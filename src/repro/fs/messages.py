"""RPC over the simulated fabric.

Every node (MDS, OSD, client) is an :class:`RpcHost` with a mailbox; a
dispatcher process pops messages and spawns one handler process per message,
so a node serves requests concurrently while its devices and NIC provide the
real back-pressure.

``rpc`` is request/response (the caller waits for the handler's reply and
pays both transfer directions); ``send`` is one-way fire-and-forget used for
background notifications.

Delivery semantics are **at-most-once** (see docs/faults.md): every request
carries a deterministic per-host request id, and each host keeps a bounded
per-peer dedup table with a reply cache.  A retransmitted request whose
original was already applied replays the cached reply instead of re-running
the handler, so message loss anywhere on the fabric — requests, ``.reply``
frames, ``.err`` frames — never double-applies an op.  The dedup table is
volatile state: cleared by ``crash()``, preserved across ``stop()``.

Failure semantics (the failure-injection scenarios build on these):

* a host that is *stopped* (``stop()``, transient maintenance) blocks new
  callers until it restarts — connections retry at the transport level, and
  in-flight handlers run to completion;
* a host that has *crashed* (``crash()``, fail-stop) refuses new calls with
  :class:`HostDownError` immediately, aborts its in-flight handlers and
  fails their reply events, and fails every request queued in its mailbox.
  Callers must treat a :class:`HostDownError` as "the op may or may not
  have been applied" and recover accordingly.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Generator, Optional, Tuple

from repro.net.fabric import Fabric, LinkLossError
from repro.sim.core import Simulator
from repro.sim.events import AnyOf, Event, Interrupt
from repro.sim.resources import Store

# Fixed protocol overhead charged per message in addition to payload bytes.
MSG_OVERHEAD = 64

Handler = Callable[["Message"], Generator[Event, Any, Optional[Tuple[dict, int]]]]


class HostDownError(RuntimeError):
    """An RPC could not complete because the destination host is down.

    Raised in the *caller*: either fail-fast at connect time (the host has
    crashed), or when the host crashes while the request is queued or being
    served.  The operation may have been partially applied on the dead
    host — callers retry idempotently or rely on post-recovery repair.
    """

    def __init__(self, host: str, detail: str = ""):
        super().__init__(f"host {host!r} is down{': ' + detail if detail else ''}")
        self.host = host


# Transport faults a caller may retry: the destination is down but will
# heal (HostDownError), or a lossy degraded link ate the request before
# delivery (LinkLossError — the handler never ran, so a retry is safe).
# ``rpc`` preserves that invariant under reply loss too: once a request has
# been delivered, a dropped reply is handled *inside* ``rpc`` by
# retransmitting the same request id (the dedup table makes that safe), so
# a LinkLossError escaping ``rpc`` always means "never delivered".
TRANSIENT_RPC_ERRORS = (HostDownError, LinkLossError)


class Message:
    """One RPC request in flight.

    A plain slotted class (not a dataclass): one is allocated per RPC, so
    construction cost is part of the per-op fast path.
    """

    __slots__ = ("kind", "src", "dst", "payload", "nbytes", "reply_event",
                 "sent_at", "req_id")

    def __init__(
        self,
        kind: str,
        src: str,
        dst: str,
        payload: dict,
        nbytes: int,
        reply_event: Optional[Event] = None,
        sent_at: float = 0.0,
        req_id: Optional[int] = None,
    ):
        self.kind = kind
        self.src = src
        self.dst = dst
        self.payload = payload
        self.nbytes = nbytes
        self.reply_event = reply_event
        self.sent_at = sent_at
        # Per-source monotonic request id (None on one-way sends): the key
        # of the at-most-once dedup table on the destination.
        self.req_id = req_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Message {self.kind} {self.src}->{self.dst} {self.nbytes}B>"


class RpcHost:
    """Base class for every networked node in the cluster."""

    # Total virtual-time budget a caller will wait for a stopped (not
    # crashed) host to restart: converts a never-restarted host from a
    # silent hang into a diagnosable error.  Waiters sleep on the host's
    # state-change event, so the budget costs one timer, not a poll loop.
    CONNECT_BUDGET_S = 60.0

    # At-most-once plane: per-peer dedup/reply-cache capacity (FIFO
    # eviction), and the retransmission timer of ``rpc`` for requests whose
    # reply was lost — deterministic capped exponential, no jitter entropy.
    DEDUP_CAPACITY = 128
    RETRANSMIT_RTO_S = 1e-3
    RETRANSMIT_RTO_CAP_S = 16e-3
    RETRANSMIT_BUDGET_S = 60.0

    def __init__(self, sim: Simulator, fabric: Fabric, name: str):
        self.sim = sim
        self.fabric = fabric
        self.name = name
        fabric.attach(name)
        self.mailbox: Store = Store(sim, name=f"{name}.mbox")
        self.handlers: Dict[str, Handler] = {}
        self.peers: Dict[str, "RpcHost"] = {}
        self._dispatcher = None
        self.running = False
        self.crashed = False
        # In-flight handler processes, so a crash can abort them and fail
        # their callers instead of leaving replies pending forever.
        self._inflight: Dict[Any, "Message"] = {}
        self._reply_kinds: Dict[str, str] = {}
        # Fired (and replaced) on every liveness transition — start() and
        # crash() — so connect-waiters blocked on a stopped host wake
        # exactly when its state changes instead of busy-polling.
        self._state_change: Optional[Event] = None
        # --- at-most-once delivery state ---------------------------------
        # Monotonic outgoing request-id counter (deterministic, no entropy).
        self._next_req_id = 0
        # peer name -> OrderedDict[req_id -> outcome entry], FIFO-bounded at
        # DEDUP_CAPACITY per peer.  Entries: ("inflight",) while the handler
        # runs, then ("ok", payload, nbytes) or ("err", exc).  Volatile:
        # cleared on crash() together with the rest of in-memory state,
        # preserved across stop().
        self._dedup: Dict[str, "OrderedDict[int, tuple]"] = {}
        # Kinds registered with cache_reply=False skip the dedup table
        # entirely (idempotent-by-construction traffic like heartbeats).
        self._uncached_kinds: set = set()
        # Delivery-plane counters (metrics, not protocol state — survive
        # crash so the elastic rows can report them).
        self.retransmits = 0
        self.duplicates_suppressed = 0
        self.cached_reply_hits = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def register(self, kind: str, handler: Handler, cache_reply: bool = True) -> None:
        if kind in self.handlers:
            raise ValueError(f"handler for {kind!r} already registered on {self.name}")
        self.handlers[kind] = handler
        if not cache_reply:
            self._uncached_kinds.add(kind)

    def connect(self, peers: Dict[str, "RpcHost"]) -> None:
        """Install the cluster-wide name -> host routing table."""
        self.peers = peers

    def start(self) -> None:
        """Boot the dispatcher process (idempotent)."""
        if not self.running:
            self.running = True
            self.crashed = False
            # A previous dispatcher's abandoned get() must not eat the first
            # message meant for the new one.
            self.mailbox.cancel_getters()
            self._dispatcher = self.sim.process(
                self._dispatch_loop(), name=f"{self.name}.dispatch"
            )
            self._notify_state_change()

    def _notify_state_change(self) -> None:
        ev = self._state_change
        if ev is not None:
            self._state_change = None
            ev.succeed()

    def _state_change_event(self) -> Event:
        """The event the next liveness transition (start/crash) will fire."""
        ev = self._state_change
        if ev is None:
            ev = self._state_change = Event(self.sim, name="state-change")
        return ev

    def stop(self) -> None:
        """Graceful stop: no new dispatches; in-flight handlers complete.

        Callers attempting new RPCs block at the transport until a restart
        (transient-outage semantics); queued mailbox messages are served
        when the host comes back.  The dedup table survives — a retransmit
        arriving after the restart still replays its cached reply.
        """
        self.running = False
        if self._dispatcher is not None and self._dispatcher.is_alive:
            self._dispatcher.interrupt("stop")
        self.mailbox.cancel_getters()

    def crash(self) -> None:
        """Fail-stop: abort in-flight handlers and fail all pending callers.

        New RPCs fail fast with :class:`HostDownError` until the host is
        restarted via :meth:`start`.  The dedup table and reply cache are
        volatile and lost with the rest of in-memory state.
        """
        self.running = False
        self.crashed = True
        self._notify_state_change()
        if self._dispatcher is not None and self._dispatcher.is_alive:
            self._dispatcher.interrupt("crash")
        self.mailbox.cancel_getters()
        for proc, msg in list(self._inflight.items()):
            if proc.is_alive:
                proc.interrupt("crash")
            if msg.reply_event is not None and not msg.reply_event.triggered:
                msg.reply_event.fail(HostDownError(self.name, f"crashed serving {msg.kind}"))
        self._inflight.clear()
        for msg in self.mailbox.pop_all():
            if msg.reply_event is not None and not msg.reply_event.triggered:
                msg.reply_event.fail(HostDownError(self.name, f"crashed before {msg.kind}"))
        self._dedup.clear()

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def _dispatch_loop(self):
        sim = self.sim
        mailbox = self.mailbox
        while self.running:
            msg = yield mailbox.get()
            self._spawn_handler(sim, msg)

    def _reply_kind(self, kind: str) -> str:
        """Cached ``<kind>.reply`` counter tags (no f-string per reply)."""
        tag = self._reply_kinds.get(kind)
        if tag is None:
            tag = self._reply_kinds[kind] = kind + ".reply"
        return tag

    def _dedup_record(self, src: str, req_id: int, entry: tuple) -> None:
        table = self._dedup.get(src)
        if table is None:
            table = self._dedup[src] = OrderedDict()
        table[req_id] = entry
        if len(table) > self.DEDUP_CAPACITY:
            table.popitem(last=False)

    def _record_outcome(self, msg: "Message", entry: tuple) -> None:
        """Flip the dedup entry to its final outcome.

        Called *before* the reply transfer is paid: by the time a caller
        can possibly retransmit (its reply event failed, which only happens
        after a reply-transfer attempt), the outcome is already cached.
        """
        if msg.req_id is None or msg.kind in self._uncached_kinds:
            return
        self._dedup_record(msg.src, msg.req_id, entry)

    def _spawn_handler(self, sim: Simulator, msg: "Message") -> None:
        inflight = self._inflight
        if msg.req_id is not None and msg.kind not in self._uncached_kinds:
            table = self._dedup.get(msg.src)
            entry = table.get(msg.req_id) if table is not None else None
            if entry is not None:
                self.duplicates_suppressed += 1
                if entry[0] == "inflight":
                    # Protocol-unreachable (a caller only retransmits after
                    # its reply event failed, and outcomes are recorded
                    # before the reply transfer), but defensively fail the
                    # duplicate as lost-on-the-wire so the caller's RTO
                    # retransmits instead of hanging on an orphaned event.
                    if msg.reply_event is not None and not msg.reply_event.triggered:
                        msg.reply_event.fail(LinkLossError(self.name, msg.kind))
                    return
                proc = sim.process(self._replay(msg, entry), name=msg.kind)
                inflight[proc] = msg
                proc.add_callback(lambda _ev, p=proc: inflight.pop(p, None))
                return
            self._dedup_record(msg.src, msg.req_id, ("inflight",))
        proc = sim.process(self._handle(msg), name=msg.kind)
        inflight[proc] = msg
        proc.add_callback(lambda _ev, p=proc: inflight.pop(p, None))

    def _deliver(self, msg: "Message") -> None:
        """Accept one inbound message.

        Fast path: a running host's dispatcher is by construction idle in
        ``mailbox.get()`` whenever a message arrives (it spawns handlers
        synchronously and immediately re-waits), so delivery can spawn the
        handler directly and skip the put -> get-event -> dispatcher-resume
        round trip.  Messages for a stopped host queue in the mailbox and
        are served by the dispatcher the restart boots.  Both paths funnel
        through :meth:`_spawn_handler`, where the dedup table is consulted.
        """
        if self.running and not self.crashed:
            self._spawn_handler(self.sim, msg)
        else:
            self.mailbox.put(msg)

    def _replay(self, msg: "Message", entry: tuple):
        """Serve a duplicate of an applied request from the reply cache.

        Pays the reply (or ``.err``) transfer exactly like a fresh reply —
        the caller cannot tell a replay from a first delivery — but never
        re-runs the handler: that is the at-most-once contract.
        """
        self.cached_reply_hits += 1
        try:
            if entry[0] == "ok":
                _tag, payload, nbytes = entry
                yield from self.fabric.transfer(
                    self.name, msg.src, nbytes + MSG_OVERHEAD,
                    kind=self._reply_kind(msg.kind),
                )
                if msg.reply_event is not None and not msg.reply_event.triggered:
                    msg.reply_event.succeed(payload)
            else:  # ("err", exc)
                yield from self.fabric.transfer(
                    self.name, msg.src, MSG_OVERHEAD, kind=f"{msg.kind}.err"
                )
                if msg.reply_event is not None and not msg.reply_event.triggered:
                    msg.reply_event.fail(entry[1])
        except LinkLossError as loss:
            # The replayed reply was dropped too: fail the caller's reply
            # event so its RTO fires and it retransmits again.
            if msg.reply_event is not None and not msg.reply_event.triggered:
                msg.reply_event.fail(loss)
        except Interrupt:
            if msg.reply_event is not None and not msg.reply_event.triggered:
                msg.reply_event.fail(
                    HostDownError(self.name, f"crashed replaying {msg.kind}")
                )

    def _handle(self, msg: Message):
        handler = self.handlers.get(msg.kind)
        if handler is None:
            err = KeyError(f"{self.name} has no handler for {msg.kind!r}")
            self._record_outcome(msg, ("err", err))
            if msg.reply_event is not None:
                msg.reply_event.fail(err)
                return
            raise err
        try:
            result = yield from handler(msg)
            if msg.reply_event is not None:
                payload, nbytes = result if result is not None else ({}, 0)
                # Cache the outcome BEFORE paying the reply transfer: if the
                # reply frame drops, the retransmit must hit a done entry.
                self._record_outcome(msg, ("ok", payload, nbytes))
                try:
                    yield from self.fabric.transfer(
                        self.name, msg.src, nbytes + MSG_OVERHEAD,
                        kind=self._reply_kind(msg.kind),
                    )
                except LinkLossError as loss:
                    # Reply frame dropped on a lossy link.  The op IS
                    # applied and cached; failing the reply event models
                    # the caller's retransmission timer firing, and the
                    # same-id retransmit replays the cached reply.
                    if not msg.reply_event.triggered:
                        msg.reply_event.fail(loss)
                    return
                if not msg.reply_event.triggered:
                    msg.reply_event.succeed(payload)
        except Interrupt:
            # The host crashed under us: no reply transfer (the node is
            # dead); make sure the caller learns rather than hangs.
            if msg.reply_event is not None and not msg.reply_event.triggered:
                msg.reply_event.fail(
                    HostDownError(self.name, f"crashed serving {msg.kind}")
                )
            return
        except Exception as err:
            # Application-level failure: deliver it to the caller as the
            # RPC outcome instead of crashing the serving node.
            if msg.reply_event is not None:
                self._record_outcome(msg, ("err", err))
                try:
                    yield from self.fabric.transfer(
                        self.name, msg.src, MSG_OVERHEAD, kind=f"{msg.kind}.err"
                    )
                except LinkLossError as loss:
                    if not msg.reply_event.triggered:
                        msg.reply_event.fail(loss)
                    return
                if not msg.reply_event.triggered:
                    msg.reply_event.fail(err)
                return
            raise

    # ------------------------------------------------------------------
    # calling
    # ------------------------------------------------------------------
    def _route(self, dst: str) -> "RpcHost":
        try:
            return self.peers[dst]
        except KeyError:
            raise KeyError(f"{self.name} has no route to {dst!r}") from None

    def _alloc_req_id(self) -> int:
        """Next outgoing request id — a plain counter, so two runs with the
        same schedule allocate the same ids (determinism gate)."""
        rid = self._next_req_id
        self._next_req_id = rid + 1
        return rid

    def _connect(self, dst: str, host: "RpcHost"):
        """Wait for a stopped host; refuse a crashed one (generator).

        Models the transport: connections to a host down for transient
        maintenance sleep on the host's state-change event and wake exactly
        at its restart (the historical 1 ms busy-poll loop burned a kernel
        event per retry per waiter); a crashed host refuses instantly.
        Gives up with :class:`HostDownError` after ``CONNECT_BUDGET_S`` so
        an unrecovered host surfaces as an error, not a silent simulation
        hang.
        """
        deadline = self.sim.now + self.CONNECT_BUDGET_S
        while not host.running:
            if host.crashed:
                raise HostDownError(dst)
            remaining = deadline - self.sim.now
            if remaining <= 0:
                raise HostDownError(dst, "connect budget exhausted")
            yield AnyOf(
                self.sim,
                (host._state_change_event(), self.sim.timeout(remaining)),
            )

    def rpc(self, dst: str, kind: str, payload: dict, nbytes: int = 0,
            _req_id: Optional[int] = None):
        """Request/response call; returns the reply payload (generator).

        At-most-once: the request carries a per-host monotonic id.  A
        :class:`LinkLossError` on the *forward* leg of a fresh request
        propagates (the handler never ran — the caller may retry the whole
        op with a new id).  Once the request has been delivered, a lost
        reply (or a lost retransmission) is handled here: the same id is
        retransmitted after a deterministic capped-exponential timeout and
        the destination's dedup table replays the cached reply, so the op
        is never applied twice.  ``_req_id`` lets :meth:`rpc_with_retry`
        pin one id across its attempts.
        """
        host = self._route(dst)
        req_id = self._alloc_req_id() if _req_id is None else _req_id
        delivered = False
        rto = self.RETRANSMIT_RTO_S
        rto_deadline = None
        while True:
            try:
                while True:
                    if not host.running:
                        yield from self._connect(dst, host)
                    yield from self.fabric.transfer(
                        self.name, dst, nbytes + MSG_OVERHEAD, kind=kind
                    )
                    if host.running:
                        break
                    if host.crashed:
                        # Went down while the request was on the wire.
                        raise HostDownError(dst)
                    # Stopped mid-transfer: retransmit once it is back.
            except LinkLossError:
                if not delivered:
                    # The request never reached the handler: safe for the
                    # caller to retry the whole op with a fresh id.
                    raise
                # A *retransmission* was lost; only this loop may resend
                # (same id), so fall through to the timer.
            else:
                delivered = True
                reply = Event(self.sim, name="reply")
                host._deliver(
                    Message(kind, self.name, dst, payload, nbytes, reply,
                            self.sim.now, req_id)
                )
                try:
                    result = yield reply
                    return result
                except LinkLossError:
                    # The reply frame was dropped: retransmit the same id
                    # below; the dedup table makes the resend safe.
                    pass
            if rto_deadline is None:
                rto_deadline = self.sim.now + self.RETRANSMIT_BUDGET_S
            if self.sim.now >= rto_deadline:
                # Loud failure instead of LinkLossError: the request WAS
                # delivered, so surfacing a transient-retryable error here
                # would invite an unsafe whole-op retry upstream.
                raise RuntimeError(
                    f"{self.name}: retransmit budget exhausted for "
                    f"{kind!r} -> {dst!r} (req {req_id})"
                )
            self.retransmits += 1
            yield min(rto, max(rto_deadline - self.sim.now, 1e-9))
            rto = min(rto * 2.0, self.RETRANSMIT_RTO_CAP_S)

    def rpc_delivered(self, dst: str, kind: str, payload: dict, nbytes: int = 0):
        """``rpc`` that absorbs pre-delivery request loss (generator).

        For nested *foreground* fan-out inside handlers (parity-delta
        forwards, replica ships): a :class:`LinkLossError` out of ``rpc``
        means the request never reached the handler, so resending with a
        fresh id is safe — and absorbing it here keeps a lossy source link
        from surfacing as a spurious application error to the op's owner,
        whose whole-op retry would re-run delta computation.  Every other
        failure (crash, application error, retransmit-budget exhaustion)
        propagates unchanged.  Pacing mirrors the reply-loss retransmission
        timer: deterministic capped exponential, hard budget.
        """
        rto = self.RETRANSMIT_RTO_S
        deadline = None
        while True:
            try:
                result = yield from self.rpc(dst, kind, payload, nbytes=nbytes)
                return result
            except LinkLossError:
                if deadline is None:
                    deadline = self.sim.now + self.RETRANSMIT_BUDGET_S
                if self.sim.now >= deadline:
                    raise
                self.retransmits += 1
                yield min(rto, max(deadline - self.sim.now, 1e-9))
                rto = min(rto * 2.0, self.RETRANSMIT_RTO_CAP_S)

    def rpc_with_retry(
        self,
        dst: str,
        kind: str,
        payload: dict,
        nbytes: int = 0,
        interval: float = 2e-3,
        budget: float = 120.0,
        backoff: float = 2.0,
        max_interval: float = 64e-3,
    ):
        """``rpc`` that retries transient transport faults until they heal.

        For *background* pushes only (log recycle forwards, migration
        copies): the work is owned by a detached worker with nobody
        upstream to retry it, and the destination is guaranteed to come
        back (recovery revives the serving plane of every down OSD,
        restores revive it outright).  Foreground paths must NOT use this —
        their callers own the retry policy.

        All attempts share one request id, so a retry after a transient
        fault deduplicates against the destination's reply cache whenever
        that cache survived (stop/restart, lost reply) — the op is applied
        at most once.  A crash wipes the cache with the rest of volatile
        state; post-crash reconciliation is owned by recovery, exactly as
        for the strategy state the crash also lost.

        Pacing is deadline-aware capped exponential backoff (deterministic,
        no jitter): the delay starts at ``interval``, multiplies by
        ``backoff`` up to ``max_interval``, and the last sleep is clamped
        to the remaining budget so the deadline check always fires.
        ``backoff=1.0`` degenerates to the historical fixed cadence.

        The budget is enforced against a deadline computed once from
        ``sim.now`` — accumulating ``waited += interval`` in floats drifts
        after thousands of retries and can over- or under-shoot the budget.
        """
        if interval <= 0.0:
            # interval=0 would sleep zero virtual time: sim.now never
            # advances, the deadline check never fires, and a down
            # destination spins this process forever at one instant.
            raise ValueError(f"retry interval must be > 0, got {interval!r}")
        if backoff < 1.0:
            raise ValueError(f"backoff must be >= 1.0, got {backoff!r}")
        deadline = self.sim.now + budget
        delay = float(interval)
        req_id = self._alloc_req_id()
        while True:
            try:
                result = yield from self.rpc(
                    dst, kind, payload, nbytes=nbytes, _req_id=req_id
                )
                return result
            except TRANSIENT_RPC_ERRORS:
                remaining = deadline - self.sim.now
                if remaining <= 0:
                    raise
                yield min(delay, remaining)
                if backoff > 1.0:
                    delay = min(delay * backoff, max_interval)

    def send(self, dst: str, kind: str, payload: dict, nbytes: int = 0):
        """One-way message: pays the forward transfer only (generator).

        Sends to a crashed host are dropped (fire-and-forget); sends to a
        stopped host queue and are served at restart.  No request id: a
        one-way notification has no reply to cache, and its consumers are
        idempotent by contract.
        """
        host = self._route(dst)
        yield from self.fabric.transfer(
            self.name, dst, nbytes + MSG_OVERHEAD, kind=kind
        )
        if host.crashed:
            return
        host._deliver(Message(kind, self.name, dst, payload, nbytes, None, self.sim.now))
