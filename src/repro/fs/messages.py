"""RPC over the simulated fabric.

Every node (MDS, OSD, client) is an :class:`RpcHost` with a mailbox; a
dispatcher process pops messages and spawns one handler process per message,
so a node serves requests concurrently while its devices and NIC provide the
real back-pressure.

``rpc`` is request/response (the caller waits for the handler's reply and
pays both transfer directions); ``send`` is one-way fire-and-forget used for
background notifications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional, Tuple

from repro.net.fabric import Fabric
from repro.sim.core import Simulator
from repro.sim.events import Event
from repro.sim.resources import Store

# Fixed protocol overhead charged per message in addition to payload bytes.
MSG_OVERHEAD = 64

Handler = Callable[["Message"], Generator[Event, Any, Optional[Tuple[dict, int]]]]


@dataclass
class Message:
    """One RPC request in flight."""

    kind: str
    src: str
    dst: str
    payload: dict
    nbytes: int
    reply_event: Optional[Event] = None
    sent_at: float = 0.0


class RpcHost:
    """Base class for every networked node in the cluster."""

    def __init__(self, sim: Simulator, fabric: Fabric, name: str):
        self.sim = sim
        self.fabric = fabric
        self.name = name
        fabric.attach(name)
        self.mailbox: Store = Store(sim, name=f"{name}.mbox")
        self.handlers: Dict[str, Handler] = {}
        self.peers: Dict[str, "RpcHost"] = {}
        self._dispatcher = None
        self.running = False

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def register(self, kind: str, handler: Handler) -> None:
        if kind in self.handlers:
            raise ValueError(f"handler for {kind!r} already registered on {self.name}")
        self.handlers[kind] = handler

    def connect(self, peers: Dict[str, "RpcHost"]) -> None:
        """Install the cluster-wide name -> host routing table."""
        self.peers = peers

    def start(self) -> None:
        """Boot the dispatcher process (idempotent)."""
        if not self.running:
            self.running = True
            self._dispatcher = self.sim.process(
                self._dispatch_loop(), name=f"{self.name}.dispatch"
            )

    def stop(self) -> None:
        self.running = False
        if self._dispatcher is not None and self._dispatcher.is_alive:
            self._dispatcher.interrupt("stop")

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def _dispatch_loop(self):
        while self.running:
            msg = yield self.mailbox.get()
            self.sim.process(self._handle(msg), name=f"{self.name}.{msg.kind}")

    def _handle(self, msg: Message):
        handler = self.handlers.get(msg.kind)
        if handler is None:
            err = KeyError(f"{self.name} has no handler for {msg.kind!r}")
            if msg.reply_event is not None:
                msg.reply_event.fail(err)
                return
            raise err
        try:
            result = yield from handler(msg)
        except Exception as err:
            # Application-level failure: deliver it to the caller as the
            # RPC outcome instead of crashing the serving node.
            if msg.reply_event is not None:
                yield from self.fabric.transfer(
                    self.name, msg.src, MSG_OVERHEAD, kind=f"{msg.kind}.err"
                )
                msg.reply_event.fail(err)
                return
            raise
        if msg.reply_event is not None:
            payload, nbytes = result if result is not None else ({}, 0)
            yield from self.fabric.transfer(
                self.name, msg.src, nbytes + MSG_OVERHEAD, kind=f"{msg.kind}.reply"
            )
            msg.reply_event.succeed(payload)

    # ------------------------------------------------------------------
    # calling
    # ------------------------------------------------------------------
    def _route(self, dst: str) -> "RpcHost":
        try:
            return self.peers[dst]
        except KeyError:
            raise KeyError(f"{self.name} has no route to {dst!r}") from None

    def rpc(self, dst: str, kind: str, payload: dict, nbytes: int = 0):
        """Request/response call; returns the reply payload (generator)."""
        host = self._route(dst)
        reply = self.sim.event(name=f"reply:{kind}")
        yield from self.fabric.transfer(
            self.name, dst, nbytes + MSG_OVERHEAD, kind=kind
        )
        host.mailbox.put(
            Message(kind, self.name, dst, payload, nbytes, reply, self.sim.now)
        )
        result = yield reply
        return result

    def send(self, dst: str, kind: str, payload: dict, nbytes: int = 0):
        """One-way message: pays the forward transfer only (generator)."""
        host = self._route(dst)
        yield from self.fabric.transfer(
            self.name, dst, nbytes + MSG_OVERHEAD, kind=kind
        )
        host.mailbox.put(Message(kind, self.name, dst, payload, nbytes, None, self.sim.now))
