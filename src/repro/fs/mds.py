"""The metadata server: namespace, placement authority, heartbeats.

The MDS tracks files (inode -> size/geometry), answers placement queries,
and monitors OSD liveness through heartbeats.  Clients query placement at
open time and cache it (the placement function is deterministic), so the
steady-state update path never touches the MDS — matching the paper's
architecture where the MDS is out of the data path.

The MDS also keeps the page-level written bitmap of §4.3 that classifies
incoming writes as *first writes* vs *updates*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.fs.messages import Message, RpcHost

PAGE = 4096


@dataclass
class FileMeta:
    """Namespace entry for one file."""

    inode: int
    size: int
    written_pages: Set[int] = field(default_factory=set)

    def mark_written(self, offset: int, length: int) -> None:
        for page in range(offset // PAGE, (offset + max(length, 1) - 1) // PAGE + 1):
            self.written_pages.add(page)

    def is_update(self, offset: int, length: int) -> bool:
        """True iff every touched page was previously written."""
        pages = range(offset // PAGE, (offset + max(length, 1) - 1) // PAGE + 1)
        return all(p in self.written_pages for p in pages)


class MDS(RpcHost):
    """Metadata server node."""

    HEARTBEAT_TIMEOUT = 3.0

    def __init__(self, sim, fabric, name, cluster):
        super().__init__(sim, fabric, name)
        self.cluster = cluster
        self.files: Dict[int, FileMeta] = {}
        # Instance-level so failure scenarios can tighten detection to their
        # (millisecond-scale) timescale without touching the class default.
        self.heartbeat_timeout = self.HEARTBEAT_TIMEOUT
        self.last_heartbeat: Dict[str, float] = {}
        self.register("create_file", self._h_create)
        # The next three kinds are client-facing protocol surface with no
        # in-tree caller yet: scenarios drive them directly (see
        # tests/test_fs_client_osd.py), and dropping the handlers would
        # break the wire protocol the bench harness scripts against.
        # repro-lint: allow(rpc-dead-handler) -- protocol surface exercised from tests/scenarios, no src-tree sender yet
        self.register("stat", self._h_stat)
        # repro-lint: allow(rpc-dead-handler) -- protocol surface exercised from tests/scenarios, no src-tree sender yet
        self.register("locate", self._h_locate)
        # Heartbeats opt out of the at-most-once reply cache: the handler
        # is idempotent by construction (last-writer-wins timestamp), a
        # *replayed* heartbeat would report stale liveness, and the beat
        # stream would otherwise churn the dedup table of every OSD's
        # entry for no protection.
        self.register("heartbeat", self._h_heartbeat, cache_reply=False)
        # repro-lint: allow(rpc-dead-handler) -- protocol surface exercised from tests/scenarios, no src-tree sender yet
        self.register("classify_write", self._h_classify)

    # ------------------------------------------------------------------
    # direct (non-RPC) registration used by instant loading
    # ------------------------------------------------------------------
    def register_file(self, inode: int, size: int) -> FileMeta:
        meta = self.files.get(inode)
        if meta is None:
            meta = FileMeta(inode, size)
            self.files[inode] = meta
        else:
            meta.size = max(meta.size, size)
        meta.mark_written(0, size)
        return meta

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    def _h_create(self, msg: Message):
        inode = msg.payload["inode"]
        size = msg.payload["size"]
        if inode in self.files:
            raise ValueError(f"inode {inode} already exists")
        self.files[inode] = FileMeta(inode, size)
        yield self.sim.timeout(0)  # metadata op: negligible local cost
        return {"ok": True}, 16

    def _h_stat(self, msg: Message):
        meta = self.files.get(msg.payload["inode"])
        yield self.sim.timeout(0)
        if meta is None:
            return {"exists": False}, 16
        return {"exists": True, "size": meta.size}, 32

    def _h_locate(self, msg: Message):
        inode = msg.payload["inode"]
        stripe = msg.payload["stripe"]
        names = self.cluster.placement(inode, stripe)
        yield self.sim.timeout(0)
        return {"osds": names}, 16 * len(names)

    def _h_heartbeat(self, msg: Message):
        self.last_heartbeat[msg.src] = self.sim.now
        yield self.sim.timeout(0)
        return {"ok": True}, 8

    def _h_classify(self, msg: Message):
        """First-write vs update classification (page bitmap, §4.3)."""
        meta = self.files.get(msg.payload["inode"])
        offset = msg.payload["offset"]
        length = msg.payload["length"]
        yield self.sim.timeout(0)
        if meta is None:
            return {"update": False}, 8
        is_upd = meta.is_update(offset, length)
        meta.mark_written(offset, length)
        return {"update": is_upd}, 8

    # ------------------------------------------------------------------
    # failure detection
    # ------------------------------------------------------------------
    def failed_osds(self, now: Optional[float] = None) -> List[str]:
        """Ring members whose heartbeat is older than the timeout.

        Scoped to the placement ring, not every OSD ever provisioned:
        a decommissioned node stops beating by design and must not be
        flagged for recovery, and a joiner is only monitored once a
        rebalance commits it into the ring.
        """
        now = self.sim.now if now is None else now
        out = []
        for name in self.cluster.ring:
            seen = self.last_heartbeat.get(name)
            if seen is None or now - seen > self.heartbeat_timeout:
                out.append(name)
        return out
