"""Per-OSD block storage: payload extents mapped onto device offsets.

Blocks are identified by ``(inode, stripe, block_index)`` keys.  Each block
gets a fixed device extent in the ``"blocks"`` zone at allocation time, so
the device model can price the sequentiality of every access.

All I/O methods are generators (they cost virtual time through the device);
``peek``/``install`` are cost-free escape hatches for test assertions and
instant workload pre-loading.

The store speaks both payload planes (see :mod:`repro.dataplane`): byte
mode holds real ``uint8`` arrays, ghost mode holds
:class:`~repro.dataplane.GhostExtent` metadata.  The plane is bound once
in ``__init__`` — allocator and coverage hooks are method pointers, so the
costed generators are branch-free and charge identical device time on both
planes.  Ghost mode additionally tracks per-block written-interval
coverage (:class:`~repro.logstruct.intervals.IntervalSet`): with no bytes
to re-encode, "parity coverage equals the union of data-block coverage"
is the drain-consistency invariant the cluster gate checks instead.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from repro.dataplane import GhostExtent, as_payload
from repro.devices.base import StorageDevice
from repro.logstruct.intervals import IntervalSet
from repro.sim.core import Simulator

BlockKey = Tuple[int, int, int]  # (inode, stripe, block_index)


class BlockStore:
    """Block payloads + device-extent allocation for one OSD."""

    ZONE = "blocks"

    def __init__(
        self,
        sim: Simulator,
        device: StorageDevice,
        block_size: int,
        ghost: bool = False,
    ):
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self.sim = sim
        self.device = device
        self.block_size = block_size
        self.ghost = ghost
        self.blocks: Dict[Hashable, np.ndarray] = {}
        self._extent: Dict[Hashable, int] = {}
        self._next_offset = 0
        # Plane binding happens exactly once, here: the costed generators
        # below call these method pointers and never consult the flag, so
        # timing is plane-independent by construction (and the
        # ``plane-branch`` lint rule keeps it that way).
        if ghost:
            self._new_block = self._new_ghost_block
            self._cover = self._cover_add
            self.coverage: Dict[Hashable, IntervalSet] = {}
        else:
            self._new_block = self._new_byte_block
            self._cover = self._cover_skip
            self.coverage = {}

    # ------------------------------------------------------------------
    def __contains__(self, key: Hashable) -> bool:
        return key in self.blocks

    def __len__(self) -> int:
        return len(self.blocks)

    def device_offset(self, key: Hashable) -> int:
        """The block's base offset in the device's block zone."""
        off = self._extent.get(key)
        if off is None:
            off = self._next_offset
            self._extent[key] = off
            self._next_offset += self.block_size
        return off

    def _new_byte_block(self) -> np.ndarray:
        return np.zeros(self.block_size, dtype=np.uint8)

    def _new_ghost_block(self) -> GhostExtent:
        return GhostExtent(self.block_size)

    def _materialize(self, key: Hashable):
        blk = self.blocks.get(key)
        if blk is None:
            blk = self._new_block()
            self.blocks[key] = blk
            self.device_offset(key)
        return blk

    # ------------------------------------------------------------------
    # coverage accounting (ghost-plane consistency substrate)
    # ------------------------------------------------------------------
    def _cover_add(self, key: Hashable, offset: int, length: int) -> None:
        cov = self.coverage.get(key)
        if cov is None:
            cov = self.coverage[key] = IntervalSet()
        cov.add(offset, offset + length)

    def _cover_skip(self, key: Hashable, offset: int, length: int) -> None:
        return None

    def covered(self, key: Hashable) -> IntervalSet:
        """The written-interval coverage of one block (ghost mode)."""
        cov = self.coverage.get(key)
        return cov if cov is not None else IntervalSet()

    # ------------------------------------------------------------------
    # costed I/O (generators)
    # ------------------------------------------------------------------
    def write_block(self, key: Hashable, data, pattern: Optional[str] = "seq"):
        """Write a whole block (fresh create or full overwrite)."""
        data = as_payload(data)
        if data.size != self.block_size:
            raise ValueError(
                f"block payload {data.size}B != block size {self.block_size}B"
            )
        overwrite = key in self.blocks
        yield from self.device.write(
            self.block_size,
            zone=self.ZONE,
            offset=self.device_offset(key),
            pattern=pattern,
            overwrite=overwrite,
        )
        self.blocks[key] = data.copy()
        self._cover(key, 0, self.block_size)

    def read_range(self, key: Hashable, offset: int, length: int, pattern: Optional[str] = "rand"):
        """Read ``[offset, offset+length)`` of a block; returns the bytes.

        Zero-copy contract: the return value is a **read-only view** into
        the live block, valid until the next write to this block (in
        particular: until the next ``yield`` — any other process may then
        mutate it).  Compute derived values (deltas) synchronously, or
        ``.copy()`` to hold a snapshot across simulated time.  Mutating the
        view raises, so misuse fails loudly instead of corrupting state.
        """
        self._check_range(offset, length)
        blk = self._materialize(key)
        yield from self.device.read(
            length,
            zone=self.ZONE,
            offset=self.device_offset(key) + offset,
            pattern=pattern,
        )
        view = blk[offset : offset + length]
        view.flags.writeable = False
        return view

    def write_range(
        self,
        key: Hashable,
        offset: int,
        data,
        pattern: Optional[str] = "rand",
    ):
        """In-place range update (always an overwrite in wear terms)."""
        data = as_payload(data)
        self._check_range(offset, data.size)
        blk = self._materialize(key)
        yield from self.device.write(
            data.size,
            zone=self.ZONE,
            offset=self.device_offset(key) + offset,
            pattern=pattern,
            overwrite=True,
        )
        blk[offset : offset + data.size] = data
        self._cover(key, offset, int(data.size))

    def xor_range(
        self,
        key: Hashable,
        offset: int,
        delta,
        pattern: Optional[str] = "rand",
    ):
        """Read-XOR-write of a range, atomic in content.

        The in-memory XOR applies *after* both simulated I/Os complete and
        never snapshots the old bytes across a yield, so concurrent delta
        applications to the same range commute instead of losing updates —
        the property parity-delta application needs.
        """
        delta = as_payload(delta)
        self._check_range(offset, delta.size)
        blk = self._materialize(key)
        base = self.device_offset(key) + offset
        yield from self.device.read(
            delta.size, zone=self.ZONE, offset=base, pattern=pattern
        )
        yield from self.device.write(
            delta.size, zone=self.ZONE, offset=base, pattern=pattern, overwrite=True
        )
        blk[offset : offset + delta.size] ^= delta
        self._cover(key, offset, int(delta.size))

    # ------------------------------------------------------------------
    # cost-free access (assertions / instant load / recycle folds)
    # ------------------------------------------------------------------
    def fold_xor(self, key: Hashable, offset: int, delta) -> None:
        """XOR ``delta`` into a block with no simulated I/O of its own.

        The in-memory half of a recycle merge whose device cost the caller
        already charged (PL's per-entry random I/O, PLR's whole-chunk
        rewrite).  Routing the fold through the store — instead of poking
        ``_materialize`` buffers directly — keeps ghost-plane coverage
        accounting complete, which the drain-consistency gate relies on.
        """
        self._check_range(offset, int(delta.size))
        blk = self._materialize(key)
        blk[offset : offset + delta.size] ^= delta
        self._cover(key, offset, int(delta.size))

    def peek(self, key: Hashable):
        """The block's current bytes as a read-only view (no copy).

        Valid until the next write to the block; assertion/scrub callers
        compare immediately.  ``.copy()`` to keep a snapshot.
        """
        blk = self.blocks.get(key)
        if blk is None:
            return None
        view = blk[:]
        view.flags.writeable = False
        return view

    def install(self, key: Hashable, data) -> None:
        """Place a block without simulating I/O (workload pre-load)."""
        data = as_payload(data)
        if data.size != self.block_size:
            raise ValueError("install size mismatch")
        self.blocks[key] = data.copy()
        self.device_offset(key)
        self._cover(key, 0, self.block_size)

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.block_size:
            raise ValueError(
                f"range [{offset}, {offset}+{length}) outside block of "
                f"{self.block_size}B"
            )
