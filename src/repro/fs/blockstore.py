"""Per-OSD block storage: real payload bytes mapped onto device offsets.

Blocks are identified by ``(inode, stripe, block_index)`` keys.  Each block
gets a fixed device extent in the ``"blocks"`` zone at allocation time, so
the device model can price the sequentiality of every access.

All I/O methods are generators (they cost virtual time through the device);
``peek``/``install`` are cost-free escape hatches for test assertions and
instant workload pre-loading.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from repro.devices.base import StorageDevice
from repro.sim.core import Simulator

BlockKey = Tuple[int, int, int]  # (inode, stripe, block_index)


class BlockStore:
    """Block payloads + device-extent allocation for one OSD."""

    ZONE = "blocks"

    def __init__(self, sim: Simulator, device: StorageDevice, block_size: int):
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self.sim = sim
        self.device = device
        self.block_size = block_size
        self.blocks: Dict[Hashable, np.ndarray] = {}
        self._extent: Dict[Hashable, int] = {}
        self._next_offset = 0

    # ------------------------------------------------------------------
    def __contains__(self, key: Hashable) -> bool:
        return key in self.blocks

    def __len__(self) -> int:
        return len(self.blocks)

    def device_offset(self, key: Hashable) -> int:
        """The block's base offset in the device's block zone."""
        off = self._extent.get(key)
        if off is None:
            off = self._next_offset
            self._extent[key] = off
            self._next_offset += self.block_size
        return off

    def _materialize(self, key: Hashable) -> np.ndarray:
        blk = self.blocks.get(key)
        if blk is None:
            blk = np.zeros(self.block_size, dtype=np.uint8)
            self.blocks[key] = blk
            self.device_offset(key)
        return blk

    # ------------------------------------------------------------------
    # costed I/O (generators)
    # ------------------------------------------------------------------
    def write_block(self, key: Hashable, data: np.ndarray, pattern: Optional[str] = "seq"):
        """Write a whole block (fresh create or full overwrite)."""
        data = np.asarray(data, dtype=np.uint8)
        if data.size != self.block_size:
            raise ValueError(
                f"block payload {data.size}B != block size {self.block_size}B"
            )
        overwrite = key in self.blocks
        yield from self.device.write(
            self.block_size,
            zone=self.ZONE,
            offset=self.device_offset(key),
            pattern=pattern,
            overwrite=overwrite,
        )
        self.blocks[key] = data.copy()

    def read_range(self, key: Hashable, offset: int, length: int, pattern: Optional[str] = "rand"):
        """Read ``[offset, offset+length)`` of a block; returns the bytes.

        Zero-copy contract: the return value is a **read-only view** into
        the live block, valid until the next write to this block (in
        particular: until the next ``yield`` — any other process may then
        mutate it).  Compute derived values (deltas) synchronously, or
        ``.copy()`` to hold a snapshot across simulated time.  Mutating the
        view raises, so misuse fails loudly instead of corrupting state.
        """
        self._check_range(offset, length)
        blk = self._materialize(key)
        yield from self.device.read(
            length,
            zone=self.ZONE,
            offset=self.device_offset(key) + offset,
            pattern=pattern,
        )
        view = blk[offset : offset + length]
        view.flags.writeable = False
        return view

    def write_range(
        self,
        key: Hashable,
        offset: int,
        data: np.ndarray,
        pattern: Optional[str] = "rand",
    ):
        """In-place range update (always an overwrite in wear terms)."""
        if type(data) is not np.ndarray or data.dtype != np.uint8:
            data = np.asarray(data, dtype=np.uint8)
        self._check_range(offset, data.size)
        blk = self._materialize(key)
        yield from self.device.write(
            data.size,
            zone=self.ZONE,
            offset=self.device_offset(key) + offset,
            pattern=pattern,
            overwrite=True,
        )
        blk[offset : offset + data.size] = data

    def xor_range(
        self,
        key: Hashable,
        offset: int,
        delta: np.ndarray,
        pattern: Optional[str] = "rand",
    ):
        """Read-XOR-write of a range, atomic in content.

        The in-memory XOR applies *after* both simulated I/Os complete and
        never snapshots the old bytes across a yield, so concurrent delta
        applications to the same range commute instead of losing updates —
        the property parity-delta application needs.
        """
        if type(delta) is not np.ndarray or delta.dtype != np.uint8:
            delta = np.asarray(delta, dtype=np.uint8)
        self._check_range(offset, delta.size)
        blk = self._materialize(key)
        base = self.device_offset(key) + offset
        yield from self.device.read(
            delta.size, zone=self.ZONE, offset=base, pattern=pattern
        )
        yield from self.device.write(
            delta.size, zone=self.ZONE, offset=base, pattern=pattern, overwrite=True
        )
        blk[offset : offset + delta.size] ^= delta

    # ------------------------------------------------------------------
    # cost-free access (assertions / instant load)
    # ------------------------------------------------------------------
    def peek(self, key: Hashable) -> Optional[np.ndarray]:
        """The block's current bytes as a read-only view (no copy).

        Valid until the next write to the block; assertion/scrub callers
        compare immediately.  ``.copy()`` to keep a snapshot.
        """
        blk = self.blocks.get(key)
        if blk is None:
            return None
        view = blk[:]
        view.flags.writeable = False
        return view

    def install(self, key: Hashable, data: np.ndarray) -> None:
        """Place a block without simulating I/O (workload pre-load)."""
        data = np.asarray(data, dtype=np.uint8)
        if data.size != self.block_size:
            raise ValueError("install size mismatch")
        self.blocks[key] = data.copy()
        self.device_offset(key)

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.block_size:
            raise ValueError(
                f"range [{offset}, {offset}+{length}) outside block of "
                f"{self.block_size}B"
            )
