"""Open-loop workload generators with bounded pipelining.

An :class:`OpenLoopGenerator` drives one client: arrivals come from an
:class:`~repro.workload.arrival.ArrivalProcess`, each request is routed to
one of the generator's *tenants* (an ``(inode, records)`` stream — multiple
tenants give multi-file key sharding), and in-flight requests are bounded by
``iodepth`` via a FIFO semaphore over spawned ``client.update`` /
``client.read`` processes.  With ``iodepth > 1`` requests genuinely overlap
(the client records peak concurrency); with :class:`ClosedLoop` arrivals and
``iodepth=1`` the generator degenerates to the seed's one-outstanding
replayer, bit-for-bit in its RNG draws.

Reads are served through the normal client read path, which overlays
logged-but-unrecycled bytes (the TSUE read cache) on device data — the
``mixed_rw`` scenarios measure exactly that interaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

# NB: no repro.traces imports here — traces.replay builds on this module,
# so records are duck-typed (anything with .offset and .size works).
from repro.dataplane import GhostExtent
from repro.sim import AllOf, Resource
from repro.sim.drawcursor import DrawCursor
from repro.workload.arrival import ArrivalProcess, ClosedLoop


@dataclass
class WorkloadSpec:
    """Shape of one client's request stream."""

    arrivals: ArrivalProcess = field(default_factory=ClosedLoop)
    n_requests: int = 100
    iodepth: int = 1
    # Fraction of requests issued as range reads of the same extent the
    # trace record would have updated (served via the read-overlay path).
    read_fraction: float = 0.0
    stop_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_requests < 0:
            raise ValueError(f"n_requests must be >= 0, got {self.n_requests}")
        if self.iodepth < 1:
            raise ValueError(f"iodepth must be >= 1, got {self.iodepth}")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(
                f"read_fraction must be in [0, 1], got {self.read_fraction}"
            )


class OpenLoopGenerator:
    """Drives one client with an open-loop, pipelined request stream.

    ``tenants`` is a non-empty list of ``(inode, records)`` pairs; each
    arrival picks a tenant (uniformly when there are several) and consumes
    that tenant's next trace record, cycling when the list is exhausted.
    All randomness — tenant choice, read/update mix, payload bytes — comes
    from ``rng`` in issue order, so runs are reproducible per seed.
    """

    def __init__(
        self,
        client,
        tenants: Sequence[Tuple[int, Sequence]],
        rng: np.random.Generator,
        spec: Optional[WorkloadSpec] = None,
    ):
        if not tenants:
            raise ValueError("need at least one (inode, records) tenant")
        self.client = client
        self.tenants = [(inode, list(records)) for inode, records in tenants]
        self.rng = rng
        self.spec = spec or WorkloadSpec()
        if self.spec.n_requests > 0 and any(not r for _, r in self.tenants):
            raise ValueError("every tenant needs a non-empty record list")
        # Counters (updates vs reads kept separate; `completed` mirrors the
        # historical closed-loop replayer and counts updates only).
        self.issued = 0
        self.completed = 0
        self.reads_completed = 0
        self.bytes_written = 0
        self.bytes_read = 0
        self.peak_inflight = 0
        self._inflight = 0
        self._cursors = [0] * len(self.tenants)
        # Per-op draws run through a direct-mode DrawCursor: bit-identical
        # to the historical scalar numpy calls (the property tests pin
        # this), but the payload block becomes one bulk raw pull instead of
        # a per-byte loop.  Direct mode holds no lookahead, so the arrival
        # process's interleaved draws on the same ``rng`` (ziggurat
        # exponentials consume whole raw64s) stay on the exact stream
        # position.  Per-op dict/attr lookups are hoisted into flat tables:
        # ``(inode, [(offset, size), ...], n_records)`` per tenant.
        self._draw = DrawCursor(rng)
        self._n_tenants = len(self.tenants)
        self._read_fraction = self.spec.read_fraction
        # Ghost plane: payloads leave the generator as metadata-only
        # extents.  The byte draw still happens (below, in _next_op) so the
        # shared RNG stream position — and with it every tenant/read-mix/
        # arrival draw after it — stays bit-identical across planes.
        # (The draw-order property tests drive this class with no client
        # at all, hence the defensive chain.)
        cluster = getattr(client, "cluster", None)
        self._ghost_payloads = bool(
            getattr(getattr(cluster, "config", None), "ghost_dataplane", False)
        )
        self._op_streams = [
            (inode, [(r.offset, r.size) for r in records], len(records))
            for inode, records in self.tenants
        ]

    # ------------------------------------------------------------------
    def _next_op(self):
        """Draw the next operation; RNG use is strictly in issue order."""
        draw = self._draw
        if self._n_tenants > 1:
            ti = draw.integers(self._n_tenants)
        else:
            ti = 0
        inode, recs, n_recs = self._op_streams[ti]
        c = self._cursors[ti]
        offset, size = recs[c % n_recs]
        self._cursors[ti] = c + 1
        rf = self._read_fraction
        if rf > 0 and draw.random() < rf:
            return ("read", inode, offset, size)
        payload = draw.payload(size)
        if self._ghost_payloads:
            payload = GhostExtent(size, tag="wl")
        return ("update", inode, offset, payload)

    # ------------------------------------------------------------------
    def run(self):
        """The generator process body (pass to ``sim.process``)."""
        sim = self.client.sim
        spec = self.spec
        slots = Resource(sim, capacity=spec.iodepth, name=f"{self.client.name}.iodepth")
        procs = []
        for _ in range(spec.n_requests):
            if spec.stop_at is not None and sim.now >= spec.stop_at:
                break
            gap = spec.arrivals.next_gap(sim.now, self.rng)
            if gap > 0:
                yield float(gap)
            # The iodepth bound: arrivals past the pipelining budget wait
            # here, which is what keeps open-loop memory finite.  A free
            # slot is taken synchronously (no grant event round trip).
            if not slots.try_acquire():
                yield slots.request()
            # Re-check the deadline at the slot grant: with iodepth=1 the
            # grant lands exactly at the previous completion, matching the
            # historical closed-loop replayer's issue-time truncation.
            if spec.stop_at is not None and sim.now >= spec.stop_at:
                slots.release()
                break
            # Draw the op only after the deadline re-check: a request
            # truncated at the deadline must consume no RNG state and
            # advance no tenant cursor, so the draw history always matches
            # `issued` exactly.
            op = self._next_op()
            self.issued += 1
            procs.append(sim.process(self._issue(op, slots)))
        # All draws are done: land the generator on the exact stream
        # position (32-bit half-buffer included) in case a caller resumes
        # scalar numpy draws on it.
        self._draw.sync()
        if procs:
            yield AllOf(sim, procs)
        return self.completed

    def _issue(self, op, slots: Resource):
        self._inflight += 1
        self.peak_inflight = max(self.peak_inflight, self._inflight)
        try:
            kind, inode, offset, arg = op
            if kind == "read":
                data = yield from self.client.read(inode, offset, arg)
                self.reads_completed += 1
                self.bytes_read += int(data.size)
            else:
                yield from self.client.update(inode, offset, arg)
                self.completed += 1
                self.bytes_written += int(arg.size)
        finally:
            self._inflight -= 1
            slots.release()
