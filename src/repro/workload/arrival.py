"""Inter-arrival processes for open-loop workload generation.

A closed-loop client (the seed's only mode) issues a request the moment the
previous one completes, so offered load is capped by service latency.  An
*open-loop* client decouples the two: arrivals follow a stochastic process
regardless of completions, which is what exposes queueing, backpressure and
burst behaviour.  Each process here is a stateful sampler: ``next_gap(now,
rng)`` returns the virtual seconds until the next request, drawing all
randomness from the supplied generator so runs stay a pure function of the
seed.
"""

from __future__ import annotations

import math

import numpy as np


class ArrivalProcess:
    """Base inter-arrival sampler."""

    def next_gap(self, now: float, rng: np.random.Generator) -> float:
        """Seconds from ``now`` until the next request arrives."""
        raise NotImplementedError


class ClosedLoop(ArrivalProcess):
    """Zero-gap arrivals: pacing comes entirely from the iodepth bound.

    With ``iodepth=1`` this reproduces the classic one-outstanding-request
    replayer (fio iodepth=1); larger iodepth gives a saturating pipelined
    client that always keeps ``iodepth`` requests in flight.
    """

    def next_gap(self, now: float, rng: np.random.Generator) -> float:
        return 0.0


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at a constant mean rate (requests/second)."""

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate

    def next_gap(self, now: float, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self.rate))


class OnOffArrivals(ArrivalProcess):
    """Markov-modulated ON/OFF bursts.

    During an ON window (mean ``on_s`` seconds) requests arrive Poisson at
    ``burst_rate``; OFF windows (mean ``off_s``) are silent.  Window
    durations are exponential, so the process is a classic two-state MMPP —
    the standard model for bursty tenants.
    """

    def __init__(self, burst_rate: float, on_s: float, off_s: float):
        if burst_rate <= 0 or on_s <= 0 or off_s < 0:
            raise ValueError("burst_rate/on_s must be positive, off_s >= 0")
        self.burst_rate = burst_rate
        self.on_s = on_s
        self.off_s = off_s
        self._on_until: float | None = None

    def next_gap(self, now: float, rng: np.random.Generator) -> float:
        if self._on_until is None:
            self._on_until = now + float(rng.exponential(self.on_s))
        t = now + float(rng.exponential(1.0 / self.burst_rate))
        while t > self._on_until:
            # The burst ended before this arrival: skip the silent window
            # and restart the arrival draw inside the next ON period.  A
            # caller whose clock outran the stored windows (e.g. it stalled
            # on backpressure) resumes with a fresh ON window at `now` —
            # never behind it, so the gap can never go negative.
            start = max(self._on_until + float(rng.exponential(self.off_s)), now)
            t = start + float(rng.exponential(1.0 / self.burst_rate))
            self._on_until = start + float(rng.exponential(self.on_s))
        return t - now


class DiurnalArrivals(ArrivalProcess):
    """A sinusoidal day/night ramp compressed into ``period`` seconds.

    Instantaneous rate ``rate(t) = low + (peak-low) * sin^2(pi t / period)``
    starts at the trough, peaks mid-period and returns — a day's load curve
    in miniature.  Sampling is Lewis–Shedler thinning against the ``peak``
    majorant, which is exact for any bounded rate function.
    """

    def __init__(self, low: float, peak: float, period: float):
        if not 0 < low <= peak:
            raise ValueError(f"need 0 < low <= peak, got {low}, {peak}")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.low = low
        self.peak = peak
        self.period = period

    def rate(self, t: float) -> float:
        return self.low + (self.peak - self.low) * math.sin(
            math.pi * t / self.period
        ) ** 2

    def next_gap(self, now: float, rng: np.random.Generator) -> float:
        t = now
        while True:
            t += float(rng.exponential(1.0 / self.peak))
            if float(rng.random()) * self.peak <= self.rate(t):
                return t - now
