"""Named end-to-end workload scenarios.

Each scenario is a reusable recipe: an arrival process, a pipelining depth,
a read/update mix and a tenant layout, run against a small-but-real cluster
through the standard harness config.  ``repro scenario <name>`` runs one,
``repro bench`` runs the whole registry and emits a throughput +
p50/p95/p99 baseline that later scaling PRs diff against.

Scenario runs verify *parity consistency* (stored parity equals re-encoded
stored data for every stripe of every file) after drain, not the byte-exact
shadow model of the closed-loop harness: with ``iodepth > 1`` two in-flight
updates may overlap in the file, so the final bytes depend on OSD arrival
order — legal, but not re-derivable from issue order alone.

A consequence worth knowing: log-structured strategies (``tsue``, ``fl``)
stay parity-consistent at any iodepth because their parity maintenance is
commutative XOR-delta appends, while the read-modify-write baselines
(``fo``, ``pl``, ``plr``, ``parix``, ``cord``) can race two in-flight
updates of the same stripe on the parity read-modify-write and drain
inconsistent — real deployments of those schemes need per-stripe locking,
which this reproduction does not model yet (see ROADMAP).  ``repro
scenario --method fo`` reporting ``consistent: False`` under pipelining is
the simulator faithfully surfacing that, not a bug.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

# NB: repro.harness imports are deferred to call time — the harness pulls in
# repro.traces.replay, which builds on repro.workload.generator, so a
# module-level import here would close an import cycle.
from repro.sim import AllOf
from repro.workload.arrival import (
    ArrivalProcess,
    DiurnalArrivals,
    OnOffArrivals,
    PoissonArrivals,
)
from repro.workload.generator import OpenLoopGenerator, WorkloadSpec


@dataclass(frozen=True)
class Scenario:
    """One named workload shape (cluster geometry comes from the runner)."""

    name: str
    description: str
    # Fresh arrival sampler per client — arrival processes are stateful.
    make_arrivals: Callable[[], ArrivalProcess]
    iodepth: int = 8
    read_fraction: float = 0.0
    tenants_per_client: int = 1


SCENARIOS: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    if scenario.name in SCENARIOS:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    SCENARIOS[scenario.name] = scenario
    return scenario


# Rates are per client, in requests per virtual second.  Updates complete in
# a few hundred microseconds on the SSD profile, so 4k req/s with iodepth 8
# is sustained open-loop load without runaway queueing, and the burst peak
# (12k req/s) genuinely pressures the log pools.
register_scenario(Scenario(
    name="steady",
    description="constant-rate Poisson arrivals, updates only",
    make_arrivals=lambda: PoissonArrivals(rate=4000.0),
    iodepth=8,
))
register_scenario(Scenario(
    name="burst",
    description="ON/OFF bursts: 12k req/s for ~20ms, then ~30ms silence",
    make_arrivals=lambda: OnOffArrivals(burst_rate=12000.0, on_s=0.02, off_s=0.03),
    iodepth=16,
))
register_scenario(Scenario(
    name="diurnal",
    description="sinusoidal ramp 500 -> 8k req/s, one 'day' per 0.5s",
    make_arrivals=lambda: DiurnalArrivals(low=500.0, peak=8000.0, period=0.5),
    iodepth=8,
))
register_scenario(Scenario(
    name="mixed_rw",
    description="70/30 update/read mix through the log read-overlay path",
    make_arrivals=lambda: PoissonArrivals(rate=4000.0),
    iodepth=8,
    read_fraction=0.3,
))
register_scenario(Scenario(
    name="multi_tenant",
    description="each client shards arrivals across 4 files (tenants)",
    make_arrivals=lambda: PoissonArrivals(rate=4000.0),
    iodepth=8,
    tenants_per_client=4,
))


@dataclass
class ScenarioResult:
    """Everything one scenario run reports."""

    name: str
    seed: int
    n_clients: int
    updates: int
    reads: int
    horizon: float
    iops: float              # completed ops (updates + reads) per second
    mean_latency: float      # update latency, seconds
    p50_latency: float
    p95_latency: float
    p99_latency: float
    peak_inflight: int       # max concurrent updates on any one client
    consistent: bool         # post-drain parity consistency

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "n_clients": self.n_clients,
            "updates": self.updates,
            "reads": self.reads,
            "horizon_s": self.horizon,
            "iops": self.iops,
            "mean_latency_us": self.mean_latency * 1e6,
            "p50_latency_us": self.p50_latency * 1e6,
            "p95_latency_us": self.p95_latency * 1e6,
            "p99_latency_us": self.p99_latency * 1e6,
            "peak_inflight": self.peak_inflight,
            "consistent": self.consistent,
        }

    def render(self) -> str:
        return (
            f"scenario={self.name} clients={self.n_clients} "
            f"updates={self.updates} reads={self.reads}\n"
            f"  throughput : {self.iops:,.0f} ops/s "
            f"(horizon {self.horizon * 1e3:,.1f} ms)\n"
            f"  update lat : mean {self.mean_latency * 1e6:,.1f} us | "
            f"p50 {self.p50_latency * 1e6:,.1f} | "
            f"p95 {self.p95_latency * 1e6:,.1f} | "
            f"p99 {self.p99_latency * 1e6:,.1f}\n"
            f"  pipelining : peak {self.peak_inflight} in-flight updates/client\n"
            f"  consistent : {self.consistent}"
        )


def scenario_config(
    seed: int = 7,
    n_clients: int = 4,
    requests_per_client: int = 200,
    method: str = "tsue",
    device: str = "ssd",
):
    """The smoke-scale cluster geometry every scenario runs against."""
    from repro.harness.experiment import ExperimentConfig

    return ExperimentConfig(
        method=method,
        trace="ten",
        k=4,
        m=2,
        n_osds=8,
        n_clients=n_clients,
        updates_per_client=requests_per_client,
        block_size=32 * 1024,
        stripes_per_file=8,
        device_kind=device,
        seed=seed,
        verify=False,
    )


def run_scenario(
    name: str,
    seed: int = 7,
    n_clients: int = 4,
    requests_per_client: int = 200,
    method: str = "tsue",
    device: str = "ssd",
) -> ScenarioResult:
    """Run one named scenario end to end (pure function of its arguments)."""
    from repro.harness.experiment import (
        aggregate_update_latency,
        build_cluster,
        drain_all,
        drive_to_completion,
        make_trace,
    )

    if name not in SCENARIOS:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(f"unknown scenario {name!r}; known: {known}")
    scenario = SCENARIOS[name]
    cfg = scenario_config(seed, n_clients, requests_per_client, method, device)
    cluster = build_cluster(cfg)
    sim = cluster.sim

    inodes: List[int] = []
    generators: List[OpenLoopGenerator] = []
    for i in range(cfg.n_clients):
        client = cluster.add_client(f"client{i}")
        tenants = []
        for t in range(scenario.tenants_per_client):
            inode = 1000 + i * scenario.tenants_per_client + t
            cluster.register_sparse_file(inode, cfg.file_size)
            inodes.append(inode)
            trace = make_trace(cfg, cluster.rng.get(f"trace{i}.{t}"))
            tenants.append((inode, trace))
        spec = WorkloadSpec(
            arrivals=scenario.make_arrivals(),
            n_requests=requests_per_client,
            iodepth=scenario.iodepth,
            read_fraction=scenario.read_fraction,
        )
        generators.append(
            OpenLoopGenerator(client, tenants, cluster.rng.get(f"workload{i}"), spec)
        )

    cluster.start()

    def main():
        procs = [
            sim.process(g.run(), name=f"gen{i}") for i, g in enumerate(generators)
        ]
        yield AllOf(sim, procs)
        horizon = sim.now
        yield from drain_all(cluster)
        return horizon

    horizon = drive_to_completion(
        sim, sim.process(main(), name=f"scenario:{name}"), what=f"scenario {name!r}"
    )
    cluster.stop()

    consistent = all(
        cluster.stripe_consistent(inode, s)
        for inode in inodes
        for s in range(cfg.stripes_per_file)
    )

    agg = aggregate_update_latency(cluster.clients)
    p50, p95, p99 = agg.percentiles((50.0, 95.0, 99.0))
    updates = sum(g.completed for g in generators)
    reads = sum(g.reads_completed for g in generators)
    return ScenarioResult(
        name=name,
        seed=seed,
        n_clients=cfg.n_clients,
        updates=updates,
        reads=reads,
        horizon=horizon,
        iops=((updates + reads) / horizon) if horizon > 0 else 0.0,
        mean_latency=agg.mean(),
        p50_latency=p50,
        p95_latency=p95,
        p99_latency=p99,
        peak_inflight=max(c.peak_inflight_updates for c in cluster.clients),
        consistent=consistent,
    )


def run_all_scenarios(
    names: Optional[Sequence[str]] = None, **kwargs
) -> List[ScenarioResult]:
    """Run every registered scenario (or ``names``, in that order)."""
    return [run_scenario(n, **kwargs) for n in (names or sorted(SCENARIOS))]


def results_to_json(results: Sequence[ScenarioResult]) -> dict:
    """The ``BENCH_scenarios.json`` baseline payload."""
    return {
        "bench": "scenarios",
        "scenarios": {r.name: r.to_dict() for r in results},
    }
