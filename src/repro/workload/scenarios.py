"""Named end-to-end workload scenarios.

Each scenario is a reusable recipe: an arrival process, a pipelining depth,
a read/update mix, a tenant layout and (optionally) a custom record stream,
run against a small-but-real cluster through the standard harness config.
``repro scenario <name>`` runs one, ``repro bench`` runs the whole registry
— plus a per-method sweep of one scenario — and emits a throughput +
p50/p95/p99 + lock-wait baseline that later scaling PRs diff against.

Scenario runs verify *parity consistency* (stored parity equals re-encoded
stored data for every stripe of every file) after drain, not the byte-exact
shadow model of the closed-loop harness: with ``iodepth > 1`` two in-flight
updates may overlap in the file, so the final bytes depend on OSD arrival
order — legal, but not re-derivable from issue order alone.

Parity consistency is a *hard gate* for every method at every iodepth.
Log-structured strategies (``tsue``, ``fl``) are immune to same-stripe
races by construction — their parity maintenance is commutative XOR-delta
appends — while the read-modify-write baselines (``fo``, ``pl``, ``plr``,
``parix``, ``cord``) serialize same-stripe updates through their OSD's
per-stripe FIFO lock (:class:`~repro.sim.resources.KeyedLock`), exactly as
real deployments of those schemes do.  A run that still drains
inconsistent therefore indicates a genuine strategy bug, and
:func:`run_scenario` raises :class:`InconsistentDrainError` instead of
returning a result.  The cost of that serialization is measured: every
:class:`ScenarioResult` carries stripe-lock wait metrics, and the
``hot_stripe`` scenario (zipf-skewed offsets hammering a few stripes)
exists to maximise the contention the locks must absorb.

**Failure scenarios** (``degraded_read``, ``rebuild_under_load``,
``double_fault``) add a fault schedule on top of the workload: OSDs crash
or blip out mid-run, clients fence/degrade around them, and (for crash
modes) an MDS watcher rebuilds and restores the nodes while foreground
updates continue — the regime of the paper's §2.3.2/Fig. 8b recovery
story, under live load.  Two extra hard gates apply: every failure must be
healed before drain (a leftover down OSD is an error), and a *forced
post-recovery scrub* of every stripe the workload could have touched must
come back clean, or :func:`run_scenario` raises
:class:`PostRecoveryScrubError`.  Their results carry a ``recovery``
section: drain/rebuild seconds, effective recovery MB/s, degraded-read
p99, and the foreground-throughput dip while nodes were down.

**Live-change scenarios** (:data:`ELASTIC_SCENARIOS`) exercise the rest of
the fault plane: fail-slow devices (``fail_slow``), degraded/lossy fabric
links (``congested_fabric``), loss on every frame class including replies
(``lossy_cluster``), rolling restarts (``rolling_restart``), and elastic
membership — a live join (``scale_out_live``), a live decommission
(``scale_in_live``), and the same decommission under a QoS copy throttle
(``throttled_rebalance``) — migrating stripe placement through
:mod:`repro.recovery.rebalance` while foreground updates continue.  They
run under every standing gate the failure scenarios do (consistent drain,
heal-before-drain, forced post-recovery scrub) and report an extra
``elastic`` section: straggler-amplification p99 (degraded windows vs
healthy time), migration volume and time-to-rebalance, link drops, and the
foreground dip across every change window.  Scenarios that enable
full-scope loss add the delivery-plane counters (retransmits, duplicates
suppressed, cached-reply hits, per-direction drops); throttled rebalances
add the granted rate, token-wait time and throttle utilization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

# NB: repro.harness imports are deferred to call time — the harness pulls in
# repro.traces.replay, which builds on repro.workload.generator, so a
# module-level import here would close an import cycle.
from repro.metrics.latency import LatencyRecorder, merge_windows, window_samples
from repro.sim import AllOf
from repro.update import STRATEGIES
from repro.workload.arrival import (
    ArrivalProcess,
    DiurnalArrivals,
    OnOffArrivals,
    PoissonArrivals,
)
from repro.workload.faults import (
    FaultEvent,
    FaultInjector,
    client_victim,
    primary_victim,
    secondary_victim,
    stripe_member,
)
from repro.workload.generator import OpenLoopGenerator, WorkloadSpec


class InconsistentDrainError(RuntimeError):
    """A drained scenario left parity-inconsistent stripes behind.

    Raised by :func:`run_scenario` for *any* method: with per-stripe update
    serialization in place there is no legal way to drain inconsistent, so
    this always indicates a strategy bug, never expected behaviour.
    """


class PostRecoveryScrubError(RuntimeError):
    """The forced post-recovery scrub of a failure scenario was not clean.

    After every failure is recovered/restored and logs are drained, a
    forced scrub of every stripe the workload could have touched must find
    parity exactly re-encodable from data — anything else means a failure
    path (crash tearing, rebuild, repair, restore) leaked bad state.
    """


@dataclass(frozen=True)
class Scenario:
    """One named workload shape (cluster geometry comes from the runner)."""

    name: str
    description: str
    # Fresh arrival sampler per client — arrival processes are stateful.
    make_arrivals: Callable[[], ArrivalProcess]
    iodepth: int = 8
    read_fraction: float = 0.0
    tenants_per_client: int = 1
    # Custom per-tenant record stream ``(cfg, rng) -> records``; None uses
    # the config's trace family (the harness default).
    make_records: Optional[Callable] = None
    # Fault schedule fired alongside the workload (empty = no failures),
    # and whether an MDS watcher (heartbeat detection + rebuild + restore)
    # runs to heal crash-mode failures.  The heartbeat interval also paces
    # the MDS detection timeout and the watcher's poll.
    faults: Tuple[FaultEvent, ...] = ()
    recovery: bool = False
    heartbeat_interval: float = 0.002
    # Native scale: used when the runner does not pass an explicit client /
    # request count (None there means "the scenario's own size").  Lets
    # large-scale scenarios like ``scale_up`` carry their intended size
    # while the smoke registry keeps the historical 4 x 200 default.
    default_clients: Optional[int] = None
    default_requests: Optional[int] = None
    # Ghost payload plane (see repro.dataplane): metadata-only payloads.
    # Valid only without faults — scrub/rebuild need real bytes, so
    # run_scenario rejects the combination.  Composes with the automatic
    # fast_dataplane selection (fault-free scenarios already run it).
    ghost_dataplane: bool = False
    # Cluster size override (None = the runner's 8-OSD smoke geometry).
    # Lets scale tiers carry their intended cluster alongside their
    # intended client count.
    n_osds: Optional[int] = None


SCENARIOS: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    if scenario.name in SCENARIOS:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    SCENARIOS[scenario.name] = scenario
    return scenario


# Rates are per client, in requests per virtual second.  Updates complete in
# a few hundred microseconds on the SSD profile, so 4k req/s with iodepth 8
# is sustained open-loop load without runaway queueing, and the burst peak
# (12k req/s) genuinely pressures the log pools.
register_scenario(Scenario(
    name="steady",
    description="constant-rate Poisson arrivals, updates only",
    make_arrivals=lambda: PoissonArrivals(rate=4000.0),
    iodepth=8,
))
register_scenario(Scenario(
    name="burst",
    description="ON/OFF bursts: 12k req/s for ~20ms, then ~30ms silence",
    make_arrivals=lambda: OnOffArrivals(burst_rate=12000.0, on_s=0.02, off_s=0.03),
    iodepth=16,
))
register_scenario(Scenario(
    name="diurnal",
    description="sinusoidal ramp 500 -> 8k req/s, one 'day' per 0.5s",
    make_arrivals=lambda: DiurnalArrivals(low=500.0, peak=8000.0, period=0.5),
    iodepth=8,
))
register_scenario(Scenario(
    name="mixed_rw",
    description="70/30 update/read mix through the log read-overlay path",
    make_arrivals=lambda: PoissonArrivals(rate=4000.0),
    iodepth=8,
    read_fraction=0.3,
))
register_scenario(Scenario(
    name="multi_tenant",
    description="each client shards arrivals across 4 files (tenants)",
    make_arrivals=lambda: PoissonArrivals(rate=4000.0),
    iodepth=8,
    tenants_per_client=4,
))


def _hot_stripe_records(cfg, rng):
    """Zipf-skewed stripe choice: most updates hammer one or two stripes.

    Stripe popularity follows rank^-1.5 over the file's stripes, so with 8
    stripes roughly half of all updates land on the hottest one — the
    worst case for per-stripe update serialization, which is the point:
    this scenario exists to measure lock-wait cost under contention.
    Offsets are page-aligned within the chosen stripe and sizes small, so
    same-block overlap (the race the locks close) is frequent too.
    """
    from repro.sim.drawcursor import DrawCursor, choice_cdf
    from repro.traces.synth import PAGE, TraceRecord, _zipf_weights

    span = cfg.k * cfg.block_size
    n_stripes = cfg.stripes_per_file
    pages_per_stripe = span // PAGE
    weights = _zipf_weights(n_stripes, 1.5)
    # A fixed shuffle decouples popularity rank from stripe number, so the
    # hot stripes land on different OSD rings per seed.
    order = list(rng.permutation(n_stripes))
    # Chunked replay of the historical scalar draw order (two choice
    # uniforms + one bounded integer per record), bit-identical per seed.
    stripe_cdf = choice_cdf(weights)
    size_cdf = choice_cdf([0.4, 0.6])
    cur = DrawCursor(rng, chunk=min(8192, 3 * cfg.updates_per_client + 8))
    out = []
    for _ in range(cfg.updates_per_client):
        stripe = int(order[cur.weighted_index(stripe_cdf)])
        page = cur.integers(pages_per_stripe)
        size = (512, 4096)[cur.weighted_index(size_cdf)]
        out.append(TraceRecord(stripe * span + page * PAGE, size))
    cur.sync()
    return out


register_scenario(Scenario(
    name="hot_stripe",
    description="zipf-skewed offsets hammer a few stripes (lock contention)",
    make_arrivals=lambda: PoissonArrivals(rate=4000.0),
    iodepth=16,
    make_records=_hot_stripe_records,
))

# The post-fast-path scale tier: an order of magnitude more clients x
# requests than the smoke rows (32 x 2000 = 64k requests vs 4 x 200 = 800).
# Saturating open-loop load — 32 clients offer far more than the 8-OSD
# cluster absorbs, so this measures peak sustainable throughput with the
# iodepth bound as the only brake.  Only practical with the fast-path
# engine; the pre-PR engine took minutes per method here.
register_scenario(Scenario(
    name="scale_up",
    description="32 clients x 2000 requests, saturating steady arrivals "
                "(the 10x scale tier; native size, shrinks under explicit "
                "--clients/--requests)",
    make_arrivals=lambda: PoissonArrivals(rate=4000.0),
    iodepth=8,
    default_clients=32,
    default_requests=2000,
))

# The ghost-plane scale tier: 1024 clients over 256 OSDs — geometry the
# byte plane cannot hold in memory (every payload, log segment and block
# would be real bytes) and the event kernel alone can.  Payloads are
# metadata-only (``ghost_dataplane``), so this row measures scheduling,
# queueing and consistency accounting at cluster scale; per-method rows
# land in the bench next to ``scale_up``.  Native size targets sub-minute
# wall for the full 7-method sweep; explicit --clients/--requests shrink
# it the same way as every other scenario.
register_scenario(Scenario(
    name="scale_out",
    description="1024 clients x 256 OSDs on the ghost payload plane "
                "(metadata-only extents; native size, shrinks under "
                "explicit --clients/--requests)",
    make_arrivals=lambda: PoissonArrivals(rate=4000.0),
    iodepth=8,
    default_clients=1024,
    default_requests=6,
    ghost_dataplane=True,
    n_osds=256,
))


# Failure scenarios.  Fault times are early enough to land inside even the
# 2-client x 40-request smoke runs (~10ms of arrivals at 4k req/s) while the
# mixed workload is genuinely in flight.
register_scenario(Scenario(
    name="degraded_read",
    description="transient OSD outage: degraded reads + write fencing, "
                "restore with store intact",
    make_arrivals=lambda: PoissonArrivals(rate=4000.0),
    iodepth=8,
    read_fraction=0.4,
    faults=(
        FaultEvent(at=0.004, action="fail", victim=primary_victim, mode="stop"),
        FaultEvent(at=0.016, action="restore", victim=primary_victim),
    ),
))
register_scenario(Scenario(
    name="rebuild_under_load",
    description="crash one OSD mid-workload; heartbeat detection, rebuild "
                "and restore run under the foreground updates",
    make_arrivals=lambda: PoissonArrivals(rate=4000.0),
    iodepth=8,
    read_fraction=0.2,
    faults=(
        FaultEvent(at=0.004, action="fail", victim=primary_victim, mode="crash"),
    ),
    recovery=True,
))
register_scenario(Scenario(
    name="double_fault",
    description="a second OSD crashes while the first rebuild is under "
                "way (m=2): sequential recovery of both",
    make_arrivals=lambda: PoissonArrivals(rate=4000.0),
    iodepth=8,
    faults=(
        FaultEvent(at=0.004, action="fail", victim=primary_victim, mode="crash"),
        FaultEvent(at=0.012, action="fail", victim=secondary_victim, mode="crash"),
    ),
    recovery=True,
))


# Live-change scenarios: fail-slow, fabric degradation, rolling restarts
# and elastic membership.  Same timing discipline as the failure scenarios
# (inject by ~4ms, heal by ~16ms) so every schedule lands inside the
# 2-client smoke runs; none needs the MDS watcher — slow/slow_link heal by
# schedule, restarts restore themselves, and membership changes migrate
# data rather than losing it.
register_scenario(Scenario(
    name="fail_slow",
    description="one OSD's device serves 6x slower mid-run, then heals: "
                "straggler amplification with no failure event at all",
    make_arrivals=lambda: PoissonArrivals(rate=4000.0),
    iodepth=8,
    read_fraction=0.2,
    faults=(
        FaultEvent(at=0.003, action="slow", victim=primary_victim, factor=6.0),
        FaultEvent(at=0.012, action="heal", victim=primary_victim),
    ),
))
register_scenario(Scenario(
    name="congested_fabric",
    description="congested fabric: the primary's link loses 7/8 of its "
                "bandwidth and gains 200us/message; the client link drops "
                "every 7th egress message (forcing RPC retries)",
    make_arrivals=lambda: PoissonArrivals(rate=4000.0),
    iodepth=8,
    read_fraction=0.2,
    faults=(
        FaultEvent(at=0.003, action="slow_link", victim=primary_victim,
                   factor=8.0, extra_latency=200e-6),
        FaultEvent(at=0.003, action="slow_link", victim=client_victim,
                   factor=2.0, loss_every=7),
        FaultEvent(at=0.012, action="heal", victim=primary_victim),
        FaultEvent(at=0.012, action="heal", victim=client_victim),
    ),
))
register_scenario(Scenario(
    name="rolling_restart",
    description="three stripe members restart in sequence (3ms stop-mode "
                "outages, stores intact): the maintenance-window regime",
    make_arrivals=lambda: PoissonArrivals(rate=4000.0),
    iodepth=8,
    read_fraction=0.2,
    faults=(
        FaultEvent(at=0.002, action="restart", victim=stripe_member(0),
                   duration=0.003),
        FaultEvent(at=0.007, action="restart", victim=stripe_member(1),
                   duration=0.003),
        FaultEvent(at=0.012, action="restart", victim=stripe_member(2),
                   duration=0.003),
    ),
))
register_scenario(Scenario(
    name="scale_out_live",
    description="a fresh OSD joins mid-run: live stripe rebalance onto the "
                "9-node ring under foreground updates",
    make_arrivals=lambda: PoissonArrivals(rate=4000.0),
    iodepth=8,
    read_fraction=0.2,
    faults=(
        FaultEvent(at=0.004, action="join"),
    ),
))
register_scenario(Scenario(
    name="scale_in_live",
    description="the primary is decommissioned mid-run: its placement "
                "migrates away, the ring shrinks to 7 (>= k+m), the node "
                "stops",
    make_arrivals=lambda: PoissonArrivals(rate=4000.0),
    iodepth=8,
    read_fraction=0.2,
    faults=(
        FaultEvent(at=0.004, action="decommission", victim=primary_victim),
    ),
))
register_scenario(Scenario(
    name="lossy_cluster",
    description="loss anywhere on the fabric: the primary's OSD link and "
                "the client link both drop every Nth egress frame of ANY "
                "kind (requests, replies, errors) — the at-most-once "
                "plane's dedup/retransmit machinery keeps drains exact",
    make_arrivals=lambda: PoissonArrivals(rate=4000.0),
    iodepth=8,
    read_fraction=0.2,
    faults=(
        FaultEvent(at=0.003, action="slow_link", victim=primary_victim,
                   factor=2.0, loss_every=6, loss_scope="all"),
        FaultEvent(at=0.003, action="slow_link", victim=client_victim,
                   factor=2.0, loss_every=9, loss_scope="all"),
        FaultEvent(at=0.014, action="heal", victim=primary_victim),
        FaultEvent(at=0.014, action="heal", victim=client_victim),
    ),
))
register_scenario(Scenario(
    name="throttled_rebalance",
    description="scale_in_live under QoS: the same live decommission, but "
                "the migration copy is paced by a 96 MB/s token bucket so "
                "foreground traffic keeps its bandwidth during the change "
                "window",
    make_arrivals=lambda: PoissonArrivals(rate=4000.0),
    iodepth=8,
    read_fraction=0.2,
    faults=(
        FaultEvent(at=0.004, action="decommission", victim=primary_victim,
                   rebalance_mbps=96.0),
    ),
))

# The live-change sweep set (``repro bench`` runs each over every method)
# and the actions whose presence makes a scenario report an ``elastic``
# metrics section.
ELASTIC_SCENARIOS = (
    "fail_slow",
    "congested_fabric",
    "rolling_restart",
    "scale_out_live",
    "scale_in_live",
    "lossy_cluster",
    "throttled_rebalance",
)
ELASTIC_ACTIONS = ("slow", "slow_link", "heal", "join", "decommission", "restart")


@dataclass
class ScenarioResult:
    """Everything one scenario run reports."""

    name: str
    method: str
    seed: int
    n_clients: int
    updates: int
    reads: int
    horizon: float
    iops: float              # completed ops (updates + reads) per second
    mean_latency: float      # update latency, seconds
    p50_latency: float
    p95_latency: float
    p99_latency: float
    peak_inflight: int       # max concurrent updates on any one client
    # Stripe-lock accounting, aggregated over every OSD's KeyedLock.
    # Log-structured methods never acquire, so all four stay zero.
    lock_acquisitions: int
    lock_contended: int
    lock_wait_mean: float    # seconds over all acquisitions (0 if none)
    lock_wait_p99: float
    # Failure scenarios only (None otherwise): the recovery section —
    # drain/rebuild/repair seconds, effective recovery MB/s, degraded-read
    # p99, foreground-throughput dip during downtime, retry/fence counts
    # and the post-recovery scrub size.  Flat floats/ints, JSON-ready.
    recovery: Optional[Dict[str, float]] = None
    # Live-change scenarios only (None otherwise): the elastic section —
    # change-event counts, straggler-amplification p99 (degraded windows vs
    # healthy time), migration volume / time-to-rebalance, link drops and
    # the foreground dip across every change window.  Flat floats,
    # JSON-ready; serialized only when present so every pre-existing
    # baseline row stays bit-identical.
    elastic: Optional[Dict[str, float]] = None
    # Wall-clock measurement of this run (wall seconds, kernel events,
    # events/sec, peak RSS).  Machine-dependent by nature, so it is NOT
    # part of to_dict() — the simulated-output rows must stay bit-exact
    # across hosts; ``results_to_json`` publishes it as a separate ``perf``
    # section instead.
    perf: Optional[Dict[str, float]] = None
    # Which payload plane the run used.  Serialized (and rendered) only
    # when True so every pre-existing baseline row stays bit-identical.
    ghost_dataplane: bool = False

    @property
    def consistent(self) -> bool:
        """Always True for a returned result: post-drain parity consistency
        is a hard gate, and :func:`run_scenario` raises
        :class:`InconsistentDrainError` instead of constructing a result
        when it fails.  Kept (also in ``to_dict``) so baselines and callers
        keep a uniform record that the gate held."""
        return True

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "method": self.method,
            "seed": self.seed,
            "n_clients": self.n_clients,
            "updates": self.updates,
            "reads": self.reads,
            "horizon_s": self.horizon,
            "iops": self.iops,
            "mean_latency_us": self.mean_latency * 1e6,
            "p50_latency_us": self.p50_latency * 1e6,
            "p95_latency_us": self.p95_latency * 1e6,
            "p99_latency_us": self.p99_latency * 1e6,
            "peak_inflight": self.peak_inflight,
            "consistent": self.consistent,
            "lock_acquisitions": self.lock_acquisitions,
            "lock_contended": self.lock_contended,
            "lock_wait_mean_us": self.lock_wait_mean * 1e6,
            "lock_wait_p99_us": self.lock_wait_p99 * 1e6,
        }
        if self.recovery is not None:
            out["recovery"] = dict(self.recovery)
        if self.elastic is not None:
            out["elastic"] = dict(self.elastic)
        if self.ghost_dataplane:
            out["ghost_dataplane"] = True
        return out

    def render(self) -> str:
        text = (
            f"scenario={self.name} method={self.method} "
            f"clients={self.n_clients} "
            f"updates={self.updates} reads={self.reads}\n"
            f"  throughput : {self.iops:,.0f} ops/s "
            f"(horizon {self.horizon * 1e3:,.1f} ms)\n"
            f"  update lat : mean {self.mean_latency * 1e6:,.1f} us | "
            f"p50 {self.p50_latency * 1e6:,.1f} | "
            f"p95 {self.p95_latency * 1e6:,.1f} | "
            f"p99 {self.p99_latency * 1e6:,.1f}\n"
            f"  pipelining : peak {self.peak_inflight} in-flight updates/client\n"
            f"  stripe lock: {self.lock_acquisitions} acq "
            f"({self.lock_contended} contended) | "
            f"wait mean {self.lock_wait_mean * 1e6:,.1f} us "
            f"p99 {self.lock_wait_p99 * 1e6:,.1f} us\n"
            f"  consistent : {self.consistent}"
        )
        if self.recovery is not None:
            r = self.recovery
            text += (
                f"\n  failures   : {r['failures']:.0f} "
                f"({r['recoveries']:.0f} rebuilt), "
                f"downtime {r['downtime_s'] * 1e3:,.1f} ms\n"
                f"  recovery   : drain {r['drain_s'] * 1e3:,.2f} ms + "
                f"rebuild {r['rebuild_s'] * 1e3:,.2f} ms "
                f"-> {r['recovery_mbps']:,.1f} MB/s "
                f"({r['parity_repaired']:.0f} stripes repaired)\n"
                f"  degraded   : {r['degraded_reads']:.0f} reads "
                f"(p99 {r['degraded_read_p99_us']:,.1f} us) | "
                f"{r['update_retries']:.0f} update retries, "
                f"{r['fenced_updates']:.0f} fenced\n"
                f"  fg dip     : {r['foreground_dip']:.2f}x in-window "
                f"update rate | post-scrub clean over "
                f"{r['scrub_stripes']:.0f} stripes"
            )
        if self.elastic is not None:
            e = self.elastic
            text += (
                f"\n  elastic    : {e['joins']:.0f} join / "
                f"{e['decommissions']:.0f} decomm / "
                f"{e['restarts']:.0f} restart / "
                f"{e['slow_events']:.0f} slow / "
                f"{e['slow_link_events']:.0f} slow-link\n"
                f"  migration  : {e['stripes_migrated']:.0f} stripes, "
                f"{e['migration_mb']:.1f} MB in "
                f"{e['time_to_rebalance_s'] * 1e3:,.2f} ms "
                f"(quiesce {e['rebalance_quiesce_s'] * 1e3:,.2f} ms, "
                f"copy {e['rebalance_copy_s'] * 1e3:,.2f} ms)\n"
                f"  straggler  : update p99 {e['straggler_p99_us']:,.1f} us "
                f"degraded vs {e['healthy_p99_us']:,.1f} us healthy "
                f"({e['straggler_amplification']:.2f}x) | "
                f"{e['link_drops']:.0f} link drops\n"
                f"  change dip : {e['change_dip']:.2f}x in-window update rate "
                f"over {e['change_window_s'] * 1e3:,.1f} ms of change windows"
            )
            if "retransmits" in e:
                text += (
                    f"\n  delivery   : {e['retransmits']:.0f} retransmits, "
                    f"{e['duplicates_suppressed']:.0f} dups suppressed "
                    f"({e['cached_reply_hits']:.0f} cached replies) | "
                    f"drops {e['link_drop_requests']:.0f} req / "
                    f"{e['link_drop_replies']:.0f} reply"
                )
            if "throttle_utilization" in e:
                text += (
                    f"\n  throttle   : {e['rebalance_throttle_mbps']:.0f} MB/s "
                    f"granted, {e['throttle_utilization'] * 100:.0f}% used, "
                    f"{e['rebalance_throttle_wait_s'] * 1e3:,.2f} ms token wait"
                )
        return text


def scenario_config(
    seed: int = 7,
    n_clients: int = 4,
    requests_per_client: int = 200,
    method: str = "tsue",
    device: str = "ssd",
    fast_dataplane: bool = False,
    ghost_dataplane: bool = False,
    n_osds: int = 8,
):
    """The smoke-scale cluster geometry every scenario runs against."""
    from repro.harness.experiment import ExperimentConfig

    return ExperimentConfig(
        method=method,
        trace="ten",
        k=4,
        m=2,
        n_osds=n_osds,
        n_clients=n_clients,
        updates_per_client=requests_per_client,
        block_size=32 * 1024,
        stripes_per_file=8,
        device_kind=device,
        seed=seed,
        verify=False,
        fast_dataplane=fast_dataplane,
        ghost_dataplane=ghost_dataplane,
    )


def run_scenario(
    name: str,
    seed: int = 7,
    n_clients: Optional[int] = None,
    requests_per_client: Optional[int] = None,
    method: str = "tsue",
    device: str = "ssd",
    ghost_dataplane: Optional[bool] = None,
) -> ScenarioResult:
    """Run one named scenario end to end (pure function of its arguments).

    ``n_clients`` / ``requests_per_client`` of ``None`` mean "the
    scenario's native size" — the registry default of 4 x 200 for the
    smoke scenarios, 32 x 2000 for ``scale_up``.  Explicit values always
    win (CI smokes shrink every scenario the same way).

    ``ghost_dataplane=None`` means "the scenario's own plane" (True only
    for ``scale_out``); an explicit value overrides it.  Ghost runs of
    fault scenarios are rejected up front: scrub and rebuild need real
    payload bytes.
    """
    import resource as _resource
    import time as _time

    from repro.harness.experiment import (
        aggregate_update_latency,
        build_cluster,
        drain_all,
        drive_to_completion,
        make_trace,
    )

    if name not in SCENARIOS:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(f"unknown scenario {name!r}; known: {known}")
    scenario = SCENARIOS[name]
    if n_clients is None:
        n_clients = scenario.default_clients or 4
    if requests_per_client is None:
        requests_per_client = scenario.default_requests or 200
    ghost = (
        scenario.ghost_dataplane if ghost_dataplane is None else ghost_dataplane
    )
    if ghost and scenario.faults:
        raise ValueError(
            f"scenario {name!r} injects faults; the ghost payload plane "
            "cannot serve scrub/rebuild (real bytes required) — run it on "
            "the byte plane"
        )
    # repro-lint: allow(det-wallclock) -- machine-local perf section, excluded from the determinism gates
    wall_t0 = _time.perf_counter()
    # repro-lint: allow(det-wallclock) -- CPU-time twin of wall_t0; wall is noisy on shared 1-core CI boxes
    cpu_t0 = _time.process_time()
    # Fault-free scenarios run the projected-completion data plane (same
    # virtual times, a fraction of the kernel events); fault scenarios need
    # the event-based plane for interrupt-mid-I/O semantics.
    cfg = scenario_config(
        seed, n_clients, requests_per_client, method, device,
        fast_dataplane=not scenario.faults,
        ghost_dataplane=ghost,
        n_osds=scenario.n_osds or 8,
    )
    cluster = build_cluster(cfg)
    sim = cluster.sim

    inodes: List[int] = []
    generators: List[OpenLoopGenerator] = []
    for i in range(cfg.n_clients):
        client = cluster.add_client(f"client{i}")
        tenants = []
        for t in range(scenario.tenants_per_client):
            inode = 1000 + i * scenario.tenants_per_client + t
            cluster.register_sparse_file(inode, cfg.file_size)
            inodes.append(inode)
            trace_rng = cluster.rng.get(f"trace{i}.{t}")
            if scenario.make_records is not None:
                trace = scenario.make_records(cfg, trace_rng)
            else:
                trace = make_trace(cfg, trace_rng)
            tenants.append((inode, trace))
        spec = WorkloadSpec(
            arrivals=scenario.make_arrivals(),
            n_requests=requests_per_client,
            iodepth=scenario.iodepth,
            read_fraction=scenario.read_fraction,
        )
        generators.append(
            OpenLoopGenerator(client, tenants, cluster.rng.get(f"workload{i}"), spec)
        )

    cluster.start()

    injector: Optional[FaultInjector] = None
    watcher = None
    watcher_stop = None
    if scenario.faults:
        injector = FaultInjector(cluster, inodes, scenario.faults)
        if scenario.recovery:
            from repro.recovery import watch_and_recover

            # Millisecond-scale failure detection: heartbeats + timeout
            # paced to the scenario, not the 3s production default.
            cluster.mds.heartbeat_timeout = 4 * scenario.heartbeat_interval
            for osd in cluster.osds:
                osd.start_heartbeat(scenario.heartbeat_interval)
            watcher_stop = sim.event(name="watcher-stop")
            watcher = sim.process(
                watch_and_recover(
                    cluster,
                    check_interval=scenario.heartbeat_interval,
                    stop=watcher_stop,
                    repair=True,
                ),
                name="mds-watcher",
            )

    def main():
        from repro.recovery import scrub

        inj_proc = (
            sim.process(injector.run(), name="fault-injector") if injector else None
        )
        procs = [
            sim.process(g.run(), name=f"gen{i}") for i, g in enumerate(generators)
        ]
        yield AllOf(sim, procs)
        horizon = sim.now
        recoveries = []
        scrub_report = None
        if injector:
            yield inj_proc
            # Every failure must be healed (recovered or restored) before
            # the drain barrier — a leftover down OSD would wedge it.
            waited = 0.0
            while cluster.down_osds:
                if waited >= 60.0:
                    raise RuntimeError(
                        f"scenario {name!r}: OSDs still down after "
                        f"{waited:.0f}s: {sorted(cluster.down_osds)}"
                    )
                yield sim.timeout(1e-3)
                waited += 1e-3
            if watcher is not None:
                watcher_stop.succeed()
                recoveries = yield watcher
        yield from drain_all(cluster)
        if injector:
            # The post-recovery gate: a forced scrub of every stripe the
            # workload could have touched, through the real (costed) read
            # path, must be clean.
            targets = [
                (inode, s) for inode in inodes for s in range(cfg.stripes_per_file)
            ]
            scrub_report = yield from scrub(cluster, targets, force=True)
        return horizon, recoveries, scrub_report

    # repro-lint: allow(det-wallclock) -- machine-local perf section, excluded from the determinism gates
    sim_t0 = _time.perf_counter()
    # repro-lint: allow(det-wallclock) -- CPU-time twin of sim_t0
    sim_cpu_t0 = _time.process_time()
    horizon, recoveries, scrub_report = drive_to_completion(
        sim, sim.process(main(), name=f"scenario:{name}"), what=f"scenario {name!r}"
    )
    # repro-lint: allow(det-wallclock) -- machine-local perf section, excluded from the determinism gates
    sim_wall = _time.perf_counter() - sim_t0
    # repro-lint: allow(det-wallclock) -- CPU-time twin of sim_wall
    sim_cpu = _time.process_time() - sim_cpu_t0
    cluster.stop()

    recovery_section = None
    if injector:
        if scrub_report is None or not scrub_report.clean or scrub_report.skipped:
            raise PostRecoveryScrubError(
                f"scenario {name!r} method {method!r}: post-recovery scrub "
                f"found {len(scrub_report.mismatches)} bad / "
                f"{len(scrub_report.skipped)} unscrubbable stripe(s): "
                f"{scrub_report.mismatches[:8] + scrub_report.skipped[:8]}"
            )
        recovery_section = _recovery_metrics(
            cluster, injector, recoveries, scrub_report, horizon
        )

    elastic_section = None
    if injector and any(e.action in ELASTIC_ACTIONS for e in scenario.faults):
        elastic_section = _elastic_metrics(cluster, injector, horizon)

    # The hard gate: with per-stripe serialization no method may drain
    # inconsistent — a bad stripe is a strategy bug, not a workload effect.
    bad = [
        (inode, s)
        for inode in inodes
        for s in range(cfg.stripes_per_file)
        if not cluster.stripe_consistent(inode, s)
    ]
    if bad:
        shown = ", ".join(f"({i},{s})" for i, s in bad[:8])
        raise InconsistentDrainError(
            f"scenario {name!r} method {method!r} drained {len(bad)} "
            f"parity-inconsistent stripe(s): {shown}"
            + ("..." if len(bad) > 8 else "")
        )

    lock_waits = LatencyRecorder("stripe-lock")
    acquisitions = contended = 0
    for osd in cluster.osds:
        locks = osd.stripe_locks
        acquisitions += locks.acquisitions
        contended += locks.contended
        lock_waits.latencies.extend(locks.wait_times)
    wait_mean = lock_waits.mean()
    wait_p99 = lock_waits.percentile(99.0)

    agg = aggregate_update_latency(cluster.clients)
    p50, p95, p99 = agg.percentiles((50.0, 95.0, 99.0))
    updates = sum(g.completed for g in generators)
    reads = sum(g.reads_completed for g in generators)
    # Wall-clock measurement (machine-dependent; see ScenarioResult.perf).
    # ``events`` counts kernel transitions fired; events_per_sec is engine
    # throughput over the simulation phase proper (setup/teardown and the
    # consistency gates excluded); the cpu_s twins use process CPU time,
    # which stays meaningful when a shared/1-core box preempts the run;
    # peak RSS is the process high-water mark at scenario end (ru_maxrss,
    # KiB on Linux).
    # repro-lint: allow(det-wallclock) -- machine-local perf section, excluded from the determinism gates
    wall = _time.perf_counter() - wall_t0
    # repro-lint: allow(det-wallclock) -- CPU-time twin of wall
    cpu = _time.process_time() - cpu_t0
    perf_section = {
        "wall_s": wall,
        "cpu_s": cpu,
        "sim_wall_s": sim_wall,
        "sim_cpu_s": sim_cpu,
        "events": float(sim.events_fired),
        "events_per_sec": sim.events_fired / sim_wall if sim_wall > 0 else 0.0,
        "events_per_cpu_sec": (
            sim.events_fired / sim_cpu if sim_cpu > 0 else 0.0
        ),
        "requests_per_wall_sec": (
            (updates + reads) / wall if wall > 0 else 0.0
        ),
        "peak_rss_kb": float(
            _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
        ),
        "fast_dataplane": float(cfg.fast_dataplane),
    }
    if cfg.ghost_dataplane:
        perf_section["ghost_dataplane"] = 1.0
    return ScenarioResult(
        name=name,
        method=method,
        seed=seed,
        n_clients=cfg.n_clients,
        updates=updates,
        reads=reads,
        horizon=horizon,
        iops=((updates + reads) / horizon) if horizon > 0 else 0.0,
        mean_latency=agg.mean(),
        p50_latency=p50,
        p95_latency=p95,
        p99_latency=p99,
        peak_inflight=max(c.peak_inflight_updates for c in cluster.clients),
        lock_acquisitions=acquisitions,
        lock_contended=contended,
        lock_wait_mean=wait_mean,
        lock_wait_p99=wait_p99,
        recovery=recovery_section,
        elastic=elastic_section,
        perf=perf_section,
        ghost_dataplane=cfg.ghost_dataplane,
    )


def _recovery_metrics(cluster, injector, recoveries, scrub_report, horizon) -> dict:
    """The ``recovery`` section of a failure scenario's result."""
    windows = merge_windows(
        [(t0, t1) for _name, t0, t1 in cluster.down_windows if t1 is not None]
    )
    downtime = sum(b - a for a, b in windows)

    # Honest degraded p99: only reads that actually decoded through the
    # degraded path (clients record them separately), not every read that
    # happened to complete while a node was down.
    rec = LatencyRecorder("degraded")
    for c in cluster.clients:
        rec.latencies.extend(c.degraded_read_latency.latencies)
    degraded_p99 = rec.percentile(99.0)
    # All-reads-during-outage p99: the service-level view of the outage
    # (cache-hit and healthy-extent reads included).
    outage_rec = LatencyRecorder("outage-reads")
    for c in cluster.clients:
        outage_rec.latencies.extend(window_samples(c.read_latency, windows))
    outage_read_p99 = outage_rec.percentile(99.0)

    # Foreground dip: update completion rate inside the downtime windows
    # (clipped to the workload horizon) vs outside them.
    clipped = merge_windows([(a, min(b, horizon)) for a, b in windows if a < horizon])
    in_window_s = sum(b - a for a, b in clipped)
    in_count = out_count = 0
    for c in cluster.clients:
        for t in c.update_latency.completion_times:
            if t <= horizon and any(a <= t <= b for a, b in clipped):
                in_count += 1
            elif t <= horizon:
                out_count += 1
    out_s = max(horizon - in_window_s, 0.0)
    in_rate = in_count / in_window_s if in_window_s > 0 else 0.0
    out_rate = out_count / out_s if out_s > 0 else 0.0
    dip = in_rate / out_rate if out_rate > 0 else 0.0

    drain_s = sum(r.drain_seconds for r in recoveries)
    rebuild_s = sum(r.rebuild_seconds for r in recoveries)
    recovered = sum(r.bytes_recovered for r in recoveries)
    return {
        # ``restart`` is a scheduled stop-mode outage: it counts as a
        # failure here (downtime/dip integrate over its window) even though
        # it heals itself without the watcher.
        "failures": float(
            sum(1 for _t, a, _n, _d in injector.timeline if a in ("fail", "restart"))
        ),
        "recoveries": float(len(recoveries)),
        "downtime_s": downtime,
        "drain_s": drain_s,
        "rebuild_s": rebuild_s,
        "repair_s": sum(r.repair_seconds for r in recoveries),
        "recovered_mb": recovered / (1 << 20),
        "recovery_mbps": (
            recovered / (drain_s + rebuild_s) / (1 << 20)
            if drain_s + rebuild_s > 0
            else 0.0
        ),
        "parity_repaired": float(sum(r.parity_repaired for r in recoveries)),
        "degraded_reads": float(sum(c.degraded_reads for c in cluster.clients)),
        "degraded_read_p99_us": degraded_p99 * 1e6,
        "outage_read_p99_us": outage_read_p99 * 1e6,
        "update_retries": float(sum(c.update_retries for c in cluster.clients)),
        "fenced_updates": float(sum(c.fenced_updates for c in cluster.clients)),
        "foreground_dip": dip,
        "scrub_stripes": float(scrub_report.stripes_checked),
        "scrub_clean": True,  # gate: run_scenario raised otherwise
    }


def _elastic_metrics(cluster, injector, horizon) -> dict:
    """The ``elastic`` section of a live-change scenario's result.

    Change windows come from three sources: degradation windows opened by
    ``slow``/``slow_link`` events (closed by ``heal``, or at measurement
    time if the schedule never heals), outage windows from ``restart``
    steps (``cluster.down_windows``), and migration windows spanning each
    join/decommission rebalance.  Straggler amplification compares the
    update-latency p99 of ops overlapping a degraded window against the
    p99 of every other update; the change dip is the recovery-style
    foreground-rate ratio integrated over *all* change windows.
    """
    sim_now = cluster.sim.now
    counts: Dict[str, int] = {}
    for _t, action, _name, _detail in injector.timeline:
        counts[action] = counts.get(action, 0) + 1

    degraded = merge_windows(
        [(t0, t1 if t1 is not None else sim_now)
         for _name, t0, t1 in injector.degraded_windows]
    )
    degraded_s = sum(b - a for a, b in degraded)

    # Straggler amplification: updates overlapping a degraded window vs
    # every other update.  Overlap by [start, completion] span, same rule
    # as window_samples.
    slow_rec = LatencyRecorder("degraded-updates")
    fast_rec = LatencyRecorder("healthy-updates")
    for c in cluster.clients:
        for t, lat in zip(
            c.update_latency.completion_times, c.update_latency.latencies
        ):
            start = t - lat
            if any(start < b and t > a for a, b in degraded):
                slow_rec.latencies.append(lat)
            else:
                fast_rec.latencies.append(lat)
    slow_p99 = slow_rec.percentile(99.0)
    fast_p99 = fast_rec.percentile(99.0)

    migrations = list(injector.migrations)
    blocks_moved = sum(r.blocks_moved for r in migrations)
    bytes_moved = sum(r.bytes_moved for r in migrations)

    # Foreground dip across every change window (degraded + migration),
    # clipped to the workload horizon — the recovery-dip computation over a
    # wider window set.
    outage = [
        (t0, t1) for _name, t0, t1 in cluster.down_windows if t1 is not None
    ]
    change = merge_windows(
        degraded + outage + [(r.t_start, r.t_end) for r in migrations]
    )
    clipped = merge_windows([(a, min(b, horizon)) for a, b in change if a < horizon])
    in_window_s = sum(b - a for a, b in clipped)
    in_count = out_count = 0
    for c in cluster.clients:
        for t in c.update_latency.completion_times:
            if t <= horizon and any(a <= t <= b for a, b in clipped):
                in_count += 1
            elif t <= horizon:
                out_count += 1
    out_s = max(horizon - in_window_s, 0.0)
    in_rate = in_count / in_window_s if in_window_s > 0 else 0.0
    out_rate = out_count / out_s if out_s > 0 else 0.0
    dip = in_rate / out_rate if out_rate > 0 else 0.0

    out = {
        "slow_events": float(counts.get("slow", 0)),
        "slow_link_events": float(counts.get("slow_link", 0)),
        "heals": float(counts.get("heal", 0)),
        "restarts": float(counts.get("restart", 0)),
        "joins": float(counts.get("join", 0)),
        "decommissions": float(counts.get("decommission", 0)),
        "degraded_s": degraded_s,
        "straggler_p99_us": slow_p99 * 1e6,
        "healthy_p99_us": fast_p99 * 1e6,
        "straggler_amplification": slow_p99 / fast_p99 if fast_p99 > 0 else 0.0,
        "link_drops": float(cluster.fabric.dropped_total),
        "migrations": float(len(migrations)),
        "stripes_migrated": float(sum(r.stripes_migrated for r in migrations)),
        "blocks_moved": float(blocks_moved),
        "migration_mb": bytes_moved / (1 << 20),
        "time_to_rebalance_s": sum(r.total_seconds for r in migrations),
        "rebalance_quiesce_s": sum(r.quiesce_seconds for r in migrations),
        "rebalance_drain_s": sum(r.drain_seconds for r in migrations),
        "rebalance_copy_s": sum(r.copy_seconds for r in migrations),
        "change_window_s": sum(b - a for a, b in change),
        "change_dip": dip,
        "ring_size": float(len(cluster.ring)),
    }
    # Extra sections are gated on the *schedule*, never on run results:
    # committed baseline rows must keep their exact key set (new keys in
    # an existing row read as drift to ``--check-baseline``).
    if any(e.action == "slow_link" and e.loss_scope == "all"
           for e in injector.events):
        hosts = list(cluster.clients) + list(cluster.osds) + [cluster.mds]
        out["retransmits"] = float(sum(h.retransmits for h in hosts))
        out["duplicates_suppressed"] = float(
            sum(h.duplicates_suppressed for h in hosts))
        out["cached_reply_hits"] = float(
            sum(h.cached_reply_hits for h in hosts))
        out["link_drop_requests"] = float(cluster.fabric.dropped_requests)
        out["link_drop_replies"] = float(cluster.fabric.dropped_replies)
    if any(e.rebalance_mbps > 0 for e in injector.events):
        throttled = [r for r in migrations if r.throttle_mbps > 0]
        granted_mb = sum(r.throttle_mbps * r.copy_seconds for r in throttled)
        out["rebalance_throttle_mbps"] = max(
            (r.throttle_mbps for r in throttled), default=0.0)
        out["rebalance_throttle_wait_s"] = sum(
            r.throttle_wait_s for r in throttled)
        out["throttle_utilization"] = (
            sum(r.mb_moved for r in throttled) / granted_mb
            if granted_mb > 0 else 0.0
        )
    return out


# Canonical method order for per-method sweeps: the in-place family in the
# paper's presentation order, then the log-structured methods.  Derived
# from the strategy registry so a newly registered method can never be
# silently excluded from the sweep (and its consistency gate).
_METHOD_ORDER = ("fo", "pl", "plr", "parix", "cord", "fl", "tsue")
METHODS = tuple(m for m in _METHOD_ORDER if m in STRATEGIES) + tuple(
    sorted(set(STRATEGIES) - set(_METHOD_ORDER))
)


def run_all_scenarios(
    names: Optional[Sequence[str]] = None, **kwargs
) -> List[ScenarioResult]:
    """Run every registered scenario (or ``names``, in that order).

    ``names=None`` means "all, sorted"; an explicitly-passed empty
    selection is a caller bug and raises rather than silently running the
    full registry.
    """
    if names is None:
        names = sorted(SCENARIOS)
    elif not names:
        raise ValueError("empty scenario selection (pass None for all)")
    return [run_scenario(n, **kwargs) for n in names]


def _bench_row_worker(args):
    """Top-level process-pool worker: one ``(scenario, method)`` cell.

    Importable at module scope so it pickles under any multiprocessing
    start method; returns the cell key with the result so the parent can
    merge by key, independent of completion order.
    """
    name, method, kwargs = args
    return name, method, run_scenario(name, method=method, **kwargs)


def run_bench_cells(
    rows: Sequence[Tuple[str, str]], jobs: int = 1, **kwargs
) -> Dict[Tuple[str, str], ScenarioResult]:
    """Run unique ``(scenario, method)`` cells, optionally over a pool.

    The parallel bench orchestrator: every cell is an isolated
    :class:`Simulator` and a pure function of its arguments, so cells
    fan out over a ``multiprocessing`` pool with no shared state.  Rows
    are de-duplicated (a registry row that reappears in a sweep runs
    once), and the returned mapping is keyed by cell, so callers
    assemble output sections in canonical order regardless of worker
    completion order — ``--jobs N`` output is byte-identical to the
    serial reference path.

    ``jobs <= 1`` runs in-process (no pool, no pickling) and remains the
    reference implementation.
    """
    unique = list(dict.fromkeys((name, method) for name, method in rows))
    if jobs <= 1:
        return {
            (name, method): run_scenario(name, method=method, **kwargs)
            for name, method in unique
        }
    import multiprocessing as mp

    work = [(name, method, kwargs) for name, method in unique]
    n_procs = min(jobs, len(work)) or 1
    with mp.get_context().Pool(processes=n_procs) as pool:
        done = pool.map(_bench_row_worker, work, chunksize=1)
    return {(name, method): res for name, method, res in done}


def run_method_sweep(
    scenario: str = "hot_stripe",
    methods: Optional[Sequence[str]] = None,
    reuse: Sequence[ScenarioResult] = (),
    **kwargs,
) -> List[ScenarioResult]:
    """One row per update method on one scenario.

    The serialization-cost table: on ``hot_stripe`` the in-place methods
    pay measurable stripe-lock waits while ``tsue``/``fl`` acquire no locks
    at all, so the per-method deltas quantify what update serialization
    costs each family.

    ``reuse`` is an iterable of already-computed results *for the same
    scale arguments*; a row whose ``(scenario, method)`` cell appears
    there is taken from it instead of re-simulated (runs are pure
    functions of their arguments, so the cached row is identical).
    """
    if methods is None:
        methods = METHODS
    elif not methods:
        raise ValueError("empty method selection (pass None for all)")
    cached = {r.method: r for r in reuse if r.name == scenario}
    return [
        cached.get(m) or run_scenario(scenario, method=m, **kwargs)
        for m in methods
    ]


def results_to_json(
    results: Sequence[ScenarioResult],
    method_rows: Sequence[ScenarioResult] = (),
    recovery_rows: Sequence[ScenarioResult] = (),
    scale_up_rows: Sequence[ScenarioResult] = (),
    scale_out_rows: Sequence[ScenarioResult] = (),
    elastic_rows: Optional[Dict[str, Sequence[ScenarioResult]]] = None,
) -> dict:
    """The ``BENCH_scenarios.json`` baseline payload.

    ``recovery_rows`` is a per-method sweep of a failure scenario — the
    Fig. 8b-style table (recovery MB/s, degraded p99, foreground dip per
    method) lands under ``"recovery"``; ``scale_up_rows`` is the
    per-method sweep of the 10x ``scale_up`` tier; ``scale_out_rows`` is
    the per-method sweep of the ghost-plane ``scale_out`` tier (1024
    clients x 256 OSDs); ``elastic_rows`` maps live-change scenario name
    -> per-method sweep, landing under ``"elastic"`` as
    ``{scenario: {method: row}}``.  The ``perf`` section is wall-clock
    measurement (seconds, kernel events/sec, peak RSS) —
    machine-dependent, kept OUT of the simulated-output rows so those stay
    bit-exact across hosts; determinism gates must ignore it.
    """
    payload = {
        "bench": "scenarios",
        "scenarios": {r.name: r.to_dict() for r in results},
    }
    if method_rows:
        payload["methods"] = {
            r.method: r.to_dict() for r in method_rows
        }
    if recovery_rows:
        payload["recovery"] = {
            r.method: r.to_dict() for r in recovery_rows
        }
    if scale_up_rows:
        payload["scale_up"] = {
            r.method: r.to_dict() for r in scale_up_rows
        }
    if scale_out_rows:
        payload["scale_out"] = {
            r.method: r.to_dict() for r in scale_out_rows
        }
    if elastic_rows:
        payload["elastic"] = {
            scenario: {r.method: r.to_dict() for r in rows}
            for scenario, rows in elastic_rows.items()
        }
    perf = {r.name: dict(r.perf) for r in results if r.perf}
    if scale_up_rows:
        perf.update(
            {f"scale_up/{r.method}": dict(r.perf) for r in scale_up_rows if r.perf}
        )
    if scale_out_rows:
        perf.update(
            {f"scale_out/{r.method}": dict(r.perf) for r in scale_out_rows if r.perf}
        )
    if elastic_rows:
        for scenario, rows in elastic_rows.items():
            perf.update(
                {f"{scenario}/{r.method}": dict(r.perf) for r in rows if r.perf}
            )
    if perf:
        payload["perf"] = perf
    return payload
