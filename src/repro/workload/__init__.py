"""Open-loop workload generation and named end-to-end scenarios.

The seed repo drove every experiment through one closed-loop replayer (one
outstanding update per client).  This package opens the workload axis:

* :mod:`~repro.workload.arrival` — pluggable inter-arrival processes
  (Poisson, ON/OFF bursts, diurnal ramps, zero-gap closed loop);
* :mod:`~repro.workload.generator` — :class:`OpenLoopGenerator`, an
  arrival-driven client driver with bounded pipelining (``iodepth``),
  mixed read/update ratios and multi-file tenant sharding;
* :mod:`~repro.workload.faults` — schedulable fault injection
  (fail/restore, fail-slow devices, degraded/lossy fabric links, rolling
  restarts and elastic membership changes on the sim clock; the full
  taxonomy is in ``docs/faults.md``);
* :mod:`~repro.workload.scenarios` — a registry of named end-to-end
  scenarios (``steady``, ``burst``, ``diurnal``, ``mixed_rw``,
  ``multi_tenant``, ``hot_stripe``, the failure axis ``degraded_read``,
  ``rebuild_under_load``, ``double_fault``, plus the live-change axis
  :data:`~repro.workload.scenarios.ELASTIC_SCENARIOS`) behind
  ``repro scenario`` / ``repro bench``, with a hard parity-consistency
  gate on every drain, a forced post-recovery scrub gate on every fault
  scenario, and stripe-lock wait + recovery + elastic metrics in the
  results.
"""

from repro.workload.arrival import (
    ArrivalProcess,
    ClosedLoop,
    DiurnalArrivals,
    OnOffArrivals,
    PoissonArrivals,
)
from repro.workload.faults import (
    FaultEvent,
    FaultInjector,
    client_victim,
    primary_victim,
    secondary_victim,
    stripe_member,
)
from repro.workload.generator import OpenLoopGenerator, WorkloadSpec
from repro.workload.scenarios import (
    ELASTIC_SCENARIOS,
    METHODS,
    SCENARIOS,
    InconsistentDrainError,
    PostRecoveryScrubError,
    Scenario,
    ScenarioResult,
    register_scenario,
    results_to_json,
    run_all_scenarios,
    run_bench_cells,
    run_method_sweep,
    run_scenario,
    scenario_config,
)

__all__ = [
    "ArrivalProcess",
    "ClosedLoop",
    "DiurnalArrivals",
    "ELASTIC_SCENARIOS",
    "FaultEvent",
    "FaultInjector",
    "InconsistentDrainError",
    "METHODS",
    "OnOffArrivals",
    "OpenLoopGenerator",
    "PoissonArrivals",
    "PostRecoveryScrubError",
    "SCENARIOS",
    "Scenario",
    "ScenarioResult",
    "WorkloadSpec",
    "client_victim",
    "primary_victim",
    "register_scenario",
    "results_to_json",
    "run_all_scenarios",
    "run_bench_cells",
    "run_method_sweep",
    "run_scenario",
    "scenario_config",
    "secondary_victim",
    "stripe_member",
]
