"""Open-loop workload generation and named end-to-end scenarios.

The seed repo drove every experiment through one closed-loop replayer (one
outstanding update per client).  This package opens the workload axis:

* :mod:`~repro.workload.arrival` — pluggable inter-arrival processes
  (Poisson, ON/OFF bursts, diurnal ramps, zero-gap closed loop);
* :mod:`~repro.workload.generator` — :class:`OpenLoopGenerator`, an
  arrival-driven client driver with bounded pipelining (``iodepth``),
  mixed read/update ratios and multi-file tenant sharding;
* :mod:`~repro.workload.faults` — schedulable fault injection
  (fail/restore events on the sim clock, with crash and transient modes);
* :mod:`~repro.workload.scenarios` — a registry of named end-to-end
  scenarios (``steady``, ``burst``, ``diurnal``, ``mixed_rw``,
  ``multi_tenant``, ``hot_stripe``, plus the failure axis
  ``degraded_read``, ``rebuild_under_load``, ``double_fault``) behind
  ``repro scenario`` / ``repro bench``, with a hard parity-consistency
  gate on every drain, a forced post-recovery scrub gate on every failure
  scenario, and stripe-lock wait + recovery metrics in the results.
"""

from repro.workload.arrival import (
    ArrivalProcess,
    ClosedLoop,
    DiurnalArrivals,
    OnOffArrivals,
    PoissonArrivals,
)
from repro.workload.faults import (
    FaultEvent,
    FaultInjector,
    primary_victim,
    secondary_victim,
)
from repro.workload.generator import OpenLoopGenerator, WorkloadSpec
from repro.workload.scenarios import (
    METHODS,
    SCENARIOS,
    InconsistentDrainError,
    PostRecoveryScrubError,
    Scenario,
    ScenarioResult,
    register_scenario,
    results_to_json,
    run_all_scenarios,
    run_bench_cells,
    run_method_sweep,
    run_scenario,
    scenario_config,
)

__all__ = [
    "ArrivalProcess",
    "ClosedLoop",
    "DiurnalArrivals",
    "FaultEvent",
    "FaultInjector",
    "InconsistentDrainError",
    "METHODS",
    "OnOffArrivals",
    "OpenLoopGenerator",
    "PoissonArrivals",
    "PostRecoveryScrubError",
    "SCENARIOS",
    "Scenario",
    "ScenarioResult",
    "WorkloadSpec",
    "primary_victim",
    "register_scenario",
    "results_to_json",
    "run_all_scenarios",
    "run_bench_cells",
    "run_method_sweep",
    "run_scenario",
    "scenario_config",
    "secondary_victim",
]
