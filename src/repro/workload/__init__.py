"""Open-loop workload generation and named end-to-end scenarios.

The seed repo drove every experiment through one closed-loop replayer (one
outstanding update per client).  This package opens the workload axis:

* :mod:`~repro.workload.arrival` — pluggable inter-arrival processes
  (Poisson, ON/OFF bursts, diurnal ramps, zero-gap closed loop);
* :mod:`~repro.workload.generator` — :class:`OpenLoopGenerator`, an
  arrival-driven client driver with bounded pipelining (``iodepth``),
  mixed read/update ratios and multi-file tenant sharding;
* :mod:`~repro.workload.scenarios` — a registry of named end-to-end
  scenarios (``steady``, ``burst``, ``diurnal``, ``mixed_rw``,
  ``multi_tenant``, ``hot_stripe``) behind ``repro scenario`` / ``repro
  bench``, with a hard parity-consistency gate on every drain and
  stripe-lock wait metrics in every result.
"""

from repro.workload.arrival import (
    ArrivalProcess,
    ClosedLoop,
    DiurnalArrivals,
    OnOffArrivals,
    PoissonArrivals,
)
from repro.workload.generator import OpenLoopGenerator, WorkloadSpec
from repro.workload.scenarios import (
    METHODS,
    SCENARIOS,
    InconsistentDrainError,
    Scenario,
    ScenarioResult,
    register_scenario,
    results_to_json,
    run_all_scenarios,
    run_method_sweep,
    run_scenario,
    scenario_config,
)

__all__ = [
    "ArrivalProcess",
    "ClosedLoop",
    "DiurnalArrivals",
    "InconsistentDrainError",
    "METHODS",
    "OnOffArrivals",
    "OpenLoopGenerator",
    "PoissonArrivals",
    "SCENARIOS",
    "Scenario",
    "ScenarioResult",
    "WorkloadSpec",
    "register_scenario",
    "results_to_json",
    "run_all_scenarios",
    "run_method_sweep",
    "run_scenario",
    "scenario_config",
]
