"""Schedulable fault injection for scenario runs.

A :class:`FaultSchedule` is a list of :class:`FaultEvent` — actions at
fixed virtual times, driven off the sim clock by a :class:`FaultInjector`
process running alongside the open-loop workload.  Victims are picked
lazily (at fire time, against the live cluster) by small deterministic
picker functions, so schedules are declared once per scenario and work at
any geometry.

Actions (the full taxonomy is documented in ``docs/faults.md``):

* ``"fail"`` — take a node down.  ``mode="crash"`` is fail-stop (recovery
  must rebuild and restore); ``mode="stop"`` is a transient outage paired
  with a ``"restore"`` event.  ``mode`` is only valid here.
* ``"restore"`` — bring a stopped node back with its store intact.
* ``"slow"`` — fail-slow: the victim's device serves every I/O ``factor``
  times slower (:meth:`StorageDevice.degrade`); the node stays up.
* ``"slow_link"`` — degrade the victim's fabric endpoint: bandwidth
  divided by ``factor``, ``extra_latency`` added per message, and every
  ``loss_every``-th egress message dropped (forcing caller retries).
  ``loss_scope`` widens the frames at risk from requests only (default)
  to every egress frame including ``.reply``/``.err`` — safe on any
  endpoint because the RPC plane is at-most-once.
* ``"heal"`` — undo ``slow``/``slow_link`` on the victim.
* ``"restart"`` — rolling-restart step: stop-mode outage healed by a
  scheduled restore ``duration`` seconds later (no operator event needed).
* ``"join"`` — provision a fresh OSD and rebalance it into the placement
  ring (blocks the injector until the migration commits).  No victim.
  ``rebalance_mbps > 0`` runs the per-stripe QoS rebalance under a
  token-bucket copy throttle instead of the classic whole-set protocol.
* ``"decommission"`` — migrate a node's placement away, shrink the ring,
  stop the node.  Honors ``rebalance_mbps`` like ``join``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.recovery import fail_osd, rebalance_join, restore_osd

# A victim is a literal host name or a picker ``(cluster, inodes) -> name``.
VictimSpec = Union[str, Callable]

ACTIONS = (
    "fail",
    "restore",
    "slow",
    "slow_link",
    "heal",
    "join",
    "decommission",
    "restart",
)


def primary_victim(cluster, inodes: Sequence[int]) -> str:
    """The OSD hosting data block 0 of the first file's first stripe —
    deterministic, and guaranteed to carry foreground traffic."""
    return cluster.placement(inodes[0], 0)[0]


def secondary_victim(cluster, inodes: Sequence[int]) -> str:
    """A second distinct victim for double-fault schedules.

    Avoids both the first victim and its ring successor (the rebuilder
    writing the first victim's replacement blocks), so the first rebuild
    can complete and the double fault exercises *source* loss, not
    rebuilder loss.
    """
    names = cluster.placement(inodes[0], 0)
    avoid = {names[0], cluster.replica_of(names[0])}
    for name in names[1:]:
        if name not in avoid:
            return name
    raise RuntimeError("no eligible secondary victim in stripe 0")


def client_victim(cluster, inodes: Sequence[int]) -> str:
    """The first client endpoint — for link-degradation schedules.

    Historically loss had to be scheduled here: a dropped client request
    dies before any OSD handler runs, so the retry could never
    double-apply.  With the at-most-once RPC plane (request dedup + reply
    caching, see ``repro.fs.messages``) that restriction is gone — loss
    may be scheduled on any endpoint and any frame direction
    (``loss_scope="all"``); this picker remains for schedules that want
    the client's vantage point specifically.
    """
    return cluster.clients[0].name


def stripe_member(index: int) -> Callable:
    """Picker factory: the ``index``-th member of the first file's stripe 0
    (rolling-restart schedules walk distinct data-carrying members)."""

    def pick(cluster, inodes: Sequence[int]) -> str:
        return cluster.placement(inodes[0], 0)[index]

    pick.__name__ = f"stripe_member_{index}"
    return pick


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled action on (usually) one host."""

    at: float                       # virtual seconds from scenario start
    action: str                     # one of ACTIONS
    victim: Optional[VictimSpec] = None
    mode: Optional[str] = None      # "crash" | "stop"; fail events only
    factor: float = 1.0             # slow / slow_link severity multiplier
    extra_latency: float = 0.0      # slow_link: added per-message latency
    loss_every: int = 0             # slow_link: drop every Nth egress msg
    loss_scope: str = "requests"    # slow_link: "requests" | "all" frames
    duration: float = 0.0           # restart: outage length in seconds
    rebalance_mbps: float = 0.0     # join/decommission: QoS copy throttle

    def __post_init__(self):
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.action == "fail":
            mode = "crash" if self.mode is None else self.mode
            if mode not in ("crash", "stop"):
                raise ValueError(f"unknown failure mode {mode!r}")
            object.__setattr__(self, "mode", mode)
        elif self.mode is not None:
            raise ValueError(
                f"mode={self.mode!r} is only meaningful on 'fail' events, "
                f"not {self.action!r}"
            )
        if self.action == "join":
            if self.victim is not None:
                raise ValueError("'join' provisions a fresh OSD; it takes no victim")
        elif self.victim is None:
            raise ValueError(f"{self.action!r} requires a victim")
        if self.factor <= 0:
            raise ValueError(f"factor must be > 0, got {self.factor!r}")
        if self.action not in ("slow", "slow_link") and self.factor != 1.0:
            raise ValueError("factor is only meaningful on slow/slow_link events")
        if self.extra_latency < 0:
            raise ValueError(f"extra_latency must be >= 0, got {self.extra_latency!r}")
        if self.loss_every < 0:
            raise ValueError(f"loss_every must be >= 0, got {self.loss_every!r}")
        if self.action != "slow_link" and (self.extra_latency or self.loss_every):
            raise ValueError(
                "extra_latency/loss_every are only meaningful on slow_link events"
            )
        if self.loss_scope not in ("requests", "all"):
            raise ValueError(
                f"loss_scope must be 'requests' or 'all', got {self.loss_scope!r}"
            )
        if self.action != "slow_link" and self.loss_scope != "requests":
            raise ValueError(
                "loss_scope is only meaningful on slow_link events"
            )
        if self.action == "restart":
            if self.duration <= 0:
                raise ValueError("restart requires duration > 0")
        elif self.duration:
            raise ValueError("duration is only meaningful on restart events")
        if self.rebalance_mbps < 0:
            raise ValueError(
                f"rebalance_mbps must be >= 0, got {self.rebalance_mbps!r}"
            )
        if self.action not in ("join", "decommission") and self.rebalance_mbps:
            raise ValueError(
                "rebalance_mbps is only meaningful on join/decommission events"
            )


class FaultInjector:
    """Fires a schedule of fault events inside a running scenario."""

    def __init__(self, cluster, inodes: Sequence[int], events: Sequence[FaultEvent]):
        self.cluster = cluster
        self.inodes = list(inodes)
        self.events = sorted(events, key=lambda e: e.at)
        # (time, action, host_name, detail) as actually fired — scenario
        # metrics and tests read this back.  ``detail`` is the failure mode
        # for fail events (so tests can assert crash vs stop), the severity
        # tag for degradations, "" otherwise.
        self.timeline: List[Tuple[float, str, str, str]] = []
        # RebalanceResult per join/decommission, in firing order.
        self.migrations: List = []
        # [host, t_degraded, t_healed|None] per slow/slow_link window;
        # metrics close still-open windows at measurement time.
        self.degraded_windows: List[List] = []

    def _resolve(self, spec: VictimSpec) -> str:
        return spec if isinstance(spec, str) else spec(self.cluster, self.inodes)

    # ------------------------------------------------------------------
    def _open_window(self, name: str) -> None:
        self.degraded_windows.append([name, self.cluster.sim.now, None])

    def _close_window(self, name: str) -> None:
        for window in reversed(self.degraded_windows):
            if window[0] == name and window[2] is None:
                window[2] = self.cluster.sim.now
                break

    def _delayed_restore(self, name: str, duration: float):
        sim = self.cluster.sim
        yield sim.timeout(duration)
        restore_osd(self.cluster, name)
        self.timeline.append((sim.now, "restore", name, "restart"))

    # ------------------------------------------------------------------
    def run(self):
        """The injector process body (pass to ``sim.process``)."""
        sim = self.cluster.sim
        for event in self.events:
            if event.at > sim.now:
                yield sim.timeout(event.at - sim.now)
            yield from self._fire(event)
        return self.timeline

    def _fire(self, event: FaultEvent):
        cluster = self.cluster
        sim = cluster.sim
        action = event.action
        if action == "join":
            osd = cluster.add_osd()
            # Liveness before membership: the joiner beats (at the fleet's
            # cadence, if heartbeats are running) before any rebalance can
            # commit it into the monitored ring.
            interval = next(
                (o._heartbeat_interval for o in cluster.osds if o._heartbeat_interval),
                None,
            )
            if interval is not None:
                osd.start_heartbeat(interval)
            self.timeline.append((sim.now, "join", osd.name, ""))
            result = yield from rebalance_join(
                cluster, osd.name, rebalance_mbps=event.rebalance_mbps
            )
            self.migrations.append(result)
            return
        name = self._resolve(event.victim)
        if action == "fail":
            fail_osd(cluster, name, mode=event.mode)
            self.timeline.append((sim.now, "fail", name, event.mode))
        elif action == "restore":
            restore_osd(cluster, name)
            self.timeline.append((sim.now, "restore", name, ""))
        elif action == "slow":
            cluster.osd_by_name(name).device.degrade(event.factor)
            self._open_window(name)
            self.timeline.append((sim.now, "slow", name, f"x{event.factor:g}"))
        elif action == "slow_link":
            cluster.fabric.degrade_link(
                name,
                bw_factor=1.0 / event.factor,
                extra_latency=event.extra_latency,
                loss_every=event.loss_every,
                loss_scope=event.loss_scope,
            )
            self._open_window(name)
            self.timeline.append((sim.now, "slow_link", name, f"x{event.factor:g}"))
        elif action == "heal":
            host = cluster.osd_by_name(name)
            device = getattr(host, "device", None)
            if device is not None:
                device.heal()
            cluster.fabric.heal_link(name)
            self._close_window(name)
            self.timeline.append((sim.now, "heal", name, ""))
        elif action == "restart":
            fail_osd(cluster, name, mode="stop")
            self.timeline.append((sim.now, "restart", name, "stop"))
            sim.process(
                self._delayed_restore(name, event.duration),
                name=f"restart-restore:{name}",
            )
        elif action == "decommission":
            self.timeline.append((sim.now, "decommission", name, ""))
            result = yield from cluster.decommission_osd(
                name, rebalance_mbps=event.rebalance_mbps
            )
            self.migrations.append(result)
        else:  # pragma: no cover - ACTIONS is validated in FaultEvent
            raise AssertionError(f"unhandled action {action!r}")
        return
