"""Schedulable fault injection for scenario runs.

A :class:`FaultSchedule` is a list of :class:`FaultEvent` — fail/restore
actions at fixed virtual times, driven off the sim clock by a
:class:`FaultInjector` process running alongside the open-loop workload.
Victims are picked lazily (at fire time, against the live cluster) by small
deterministic picker functions, so schedules are declared once per scenario
and work at any geometry.

Failure modes map onto :func:`repro.recovery.fail_osd`:

* ``"crash"`` — fail-stop; recovery (``watch_and_recover``) must rebuild
  and restore the node;
* ``"stop"`` — transient outage; a paired ``"restore"`` event brings the
  node back with its store intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple, Union

from repro.recovery import fail_osd, restore_osd

# A victim is a literal OSD name or a picker ``(cluster, inodes) -> name``.
VictimSpec = Union[str, Callable]


def primary_victim(cluster, inodes: Sequence[int]) -> str:
    """The OSD hosting data block 0 of the first file's first stripe —
    deterministic, and guaranteed to carry foreground traffic."""
    return cluster.placement(inodes[0], 0)[0]


def secondary_victim(cluster, inodes: Sequence[int]) -> str:
    """A second distinct victim for double-fault schedules.

    Avoids both the first victim and its ring successor (the rebuilder
    writing the first victim's replacement blocks), so the first rebuild
    can complete and the double fault exercises *source* loss, not
    rebuilder loss.
    """
    names = cluster.placement(inodes[0], 0)
    avoid = {names[0], cluster.replica_of(names[0])}
    for name in names[1:]:
        if name not in avoid:
            return name
    raise RuntimeError("no eligible secondary victim in stripe 0")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled action on one OSD."""

    at: float           # virtual seconds from scenario start
    action: str         # "fail" | "restore"
    victim: VictimSpec
    mode: str = "crash"  # failure mode for "fail" events

    def __post_init__(self):
        if self.action not in ("fail", "restore"):
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.mode not in ("crash", "stop"):
            raise ValueError(f"unknown failure mode {self.mode!r}")


class FaultInjector:
    """Fires a schedule of fault events inside a running scenario."""

    def __init__(self, cluster, inodes: Sequence[int], events: Sequence[FaultEvent]):
        self.cluster = cluster
        self.inodes = list(inodes)
        self.events = sorted(events, key=lambda e: e.at)
        # (time, action, osd_name) as actually fired — scenario metrics and
        # tests read this back.
        self.timeline: List[Tuple[float, str, str]] = []

    def _resolve(self, spec: VictimSpec) -> str:
        return spec if isinstance(spec, str) else spec(self.cluster, self.inodes)

    def run(self):
        """The injector process body (pass to ``sim.process``)."""
        sim = self.cluster.sim
        for event in self.events:
            if event.at > sim.now:
                yield sim.timeout(event.at - sim.now)
            name = self._resolve(event.victim)
            if event.action == "fail":
                fail_osd(self.cluster, name, mode=event.mode)
            else:
                restore_osd(self.cluster, name)
            self.timeline.append((sim.now, event.action, name))
        return self.timeline
