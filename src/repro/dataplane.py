"""The payload planes: byte-accurate arrays vs metadata-only ghost extents.

Every simulated cost in the engine — device service times, fabric
transfers, log-space accounting, recycle scheduling — is a function of
payload *sizes*, never payload *contents*.  The ghost plane exploits that:
a :class:`GhostExtent` stands in for a ``uint8`` array, carrying only its
length (plus a generation counter and provenance tag for debugging), and
every byte-moving operation (slicing, XOR, overwrite, copy) degrades to
size bookkeeping.  Timing, event counts and completion ordering are
bit-identical to the byte plane by construction — the equivalence suite in
``tests/test_ghost_equivalence.py`` pins that per update method — while
memory stays O(metadata), which is what lets the ``scale_out`` scenario
tier run 1000+ clients over 256+ OSDs in seconds.

Plane discipline (enforced by the ``plane-branch`` lint rule):

* The plane is chosen **once**, at construction time — ``BlockStore``
  binds its allocator and coverage hooks in ``__init__``; generators
  (simulated-time code) never branch on a ghost flag.
* Payload *materialization* helpers (:func:`as_payload`,
  :func:`concat_payloads`, :func:`assemble_overlay`) may dispatch on the
  payload **type**; they are plain functions with no timing effect.
* Anything that genuinely needs real bytes — RS decode/reconstruct,
  scrub, the byte-shadow verifier — refuses loudly with
  :class:`GhostMaterializationError` instead of fabricating data.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


class GhostMaterializationError(TypeError):
    """Real bytes were demanded from a metadata-only ghost extent.

    Raised by ``GhostExtent.__array__`` (so a stray ``np.asarray`` fails
    loudly instead of silently building an object array) and by the
    decode/reconstruct/scrub paths, which are meaningless without
    payload contents.  Scenarios that need those paths (fault injection,
    rebuild, byte-shadow verification) must run on the byte plane.
    """


class _GhostFlags:
    """Mutable stand-in for ``ndarray.flags`` (only ``writeable`` is used)."""

    __slots__ = ("writeable",)

    def __init__(self, writeable: bool = True):
        self.writeable = writeable


class GhostExtent:
    """A metadata-only payload: length + generation + provenance tag.

    Duck-types the slice of the ``np.ndarray`` API the storage stack
    actually touches — ``size``/``ndim``/``dtype``, slicing, assignment,
    XOR, ``copy()``, ``flags.writeable`` — so ghost payloads flow through
    the block store, log indexes, delta algebra and RPC payloads on the
    exact code paths real bytes take.  Writes and XORs validate extents
    and lengths exactly as numpy would (mismatches and read-only
    violations raise), then update only the generation counter.
    """

    __slots__ = ("size", "gen", "tag", "flags")

    ndim = 1
    dtype = np.dtype(np.uint8)

    def __init__(self, size: int, gen: int = 0, tag: str = ""):
        size = int(size)
        if size < 0:
            raise ValueError(f"negative ghost extent size {size}")
        self.size = size
        self.gen = gen
        self.tag = tag
        self.flags = _GhostFlags()

    # -- numpy-compat surface ------------------------------------------
    @property
    def nbytes(self) -> int:
        return self.size

    @property
    def shape(self) -> Tuple[int]:
        return (self.size,)

    def __len__(self) -> int:
        return self.size

    def __array__(self, *args, **kwargs):
        raise GhostMaterializationError(
            f"ghost extent of {self.size}B (tag={self.tag!r}) cannot be "
            "materialized to real bytes; this path needs the byte plane"
        )

    def _slice_span(self, item) -> Tuple[int, int]:
        if not isinstance(item, slice):
            raise GhostMaterializationError(
                "ghost extents support range access only, not element reads"
            )
        start, stop, step = item.indices(self.size)
        if step != 1:
            raise ValueError("ghost extents support contiguous slices only")
        return start, max(stop, start)

    def __getitem__(self, item) -> "GhostExtent":
        start, stop = self._slice_span(item)
        return GhostExtent(stop - start, gen=self.gen, tag=self.tag)

    def __setitem__(self, item, value) -> None:
        if not self.flags.writeable:
            raise ValueError("assignment destination is read-only")
        start, stop = self._slice_span(item)
        n = getattr(value, "size", None)  # plain scalars broadcast freely
        if n is not None and int(n) != stop - start:
            raise ValueError(
                f"could not broadcast input of {int(n)}B into ghost range "
                f"of {stop - start}B"
            )
        self.gen += 1

    def __xor__(self, other) -> "GhostExtent":
        n = payload_size(other)
        if n != self.size:
            raise ValueError(
                f"ghost xor size mismatch: {self.size}B ^ {n}B"
            )
        return GhostExtent(self.size, gen=self.gen + 1, tag=self.tag)

    __rxor__ = __xor__

    def __ixor__(self, other) -> "GhostExtent":
        if not self.flags.writeable:
            raise ValueError("assignment destination is read-only")
        n = payload_size(other)
        if n != self.size:
            raise ValueError(
                f"ghost xor size mismatch: {self.size}B ^= {n}B"
            )
        self.gen += 1
        return self

    def copy(self) -> "GhostExtent":
        return GhostExtent(self.size, gen=self.gen, tag=self.tag)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GhostExtent({self.size}B, gen={self.gen}, tag={self.tag!r})"


def is_ghost(data) -> bool:
    """True iff ``data`` is a metadata-only payload."""
    return type(data) is GhostExtent


def payload_size(data) -> int:
    """Length in bytes of a payload of either plane."""
    return int(data.size)


def as_payload(data):
    """Coerce to a ``uint8`` array, passing ghost extents through untouched.

    The plane-neutral replacement for ``np.asarray(data, dtype=np.uint8)``
    at every payload ingestion point (block store, log indexes, client
    update path): byte payloads take the exact historical coercion, ghost
    payloads pass through by identity.
    """
    if type(data) is GhostExtent:
        return data
    if type(data) is not np.ndarray or data.dtype != np.uint8:
        return np.asarray(data, dtype=np.uint8)
    return data


def blank_payload(n: int, ghost: bool):
    """A zeroed payload of ``n`` bytes on the requested plane."""
    if ghost:
        return GhostExtent(n)
    return np.zeros(n, dtype=np.uint8)


def concat_payloads(pieces: Sequence) -> "np.ndarray | GhostExtent":
    """Plane-neutral ``np.concatenate`` for read-path reassembly."""
    if pieces and type(pieces[0]) is GhostExtent:
        return GhostExtent(sum(int(p.size) for p in pieces))
    if not pieces:
        return np.zeros(0, dtype=np.uint8)
    return np.concatenate(pieces)


def assemble_overlay(
    length: int, offset: int, overlay: List[Tuple[int, "np.ndarray"]]
):
    """Build a read buffer of ``length`` bytes from overlay fragments.

    The full-cache-hit assembly of the OSD read path: fragments fully
    cover ``[offset, offset+length)``.  Ghost fragments assemble to a
    ghost extent (pure size bookkeeping); byte fragments are patched into
    a fresh array exactly as before.
    """
    if overlay and type(overlay[0][1]) is GhostExtent:
        return GhostExtent(length)
    out = np.zeros(length, dtype=np.uint8)
    for off, frag in overlay:
        out[off - offset : off - offset + frag.size] = frag
    return out
