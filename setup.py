"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) fail inside setuptools' ``editable_wheel``.
This shim lets ``pip install -e . --no-use-pep517 --no-build-isolation``
take the classic ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
